(** Materialized views maintained incrementally from update deltas — the
    engine behind Algorithm 1 (§4.2), the paper's answer to Algorithm 3's
    per-sample re-query cost.

    This implements Equation 6 of the paper,
    [Q(w') = Q(w) ⊖ Q'(w,Δ−) ⊕ Q'(w,Δ+)], in its signed-multiset form
    (Blakeley et al.): the full query runs once at creation, and every
    subsequent {!update} folds the signed result delta into the stored count
    map. Projections therefore follow the paper's remark — counters are
    maintained and answer membership is [count > 0].

    Every node of the view tree materializes its current result bag,
    maintained in place as deltas flow through (scans alias the live base
    table), so delta propagation never re-evaluates a subtree:

    - [Join] nodes keep {!Key_index} hash indexes on their equi-join key
      columns for both children, turning δR⋈S' and R'⋈δS into per-delta-row
      index probes — the O(|Δ|) step cost of Algorithm 1. Non-equi
      predicates and products fall back to nested loops over the sibling's
      {e materialized} state (still no re-evaluation).
    - [Group_by] keeps per-group accumulators; [Count_join] keeps the
      sub-query's per-key counts plus the child indexed by key;
      [Distinct] reads its child's materialized counts.
    - [Diff] and [Order_by]+limit fall back to recomputation, but each node
      records its base-table footprint at build time and a batch touching no
      table in a subtree short-circuits it to an empty delta.

    Maintenance cost per batch is therefore O(|Δ|) per touched node (probe
    counts and per-node materialized sizes are exported as
    [view.join.probe_rows] / [view.join.index_size] /
    [view.node.materialized_rows]; see docs/OBSERVABILITY.md). *)

type t

type cache
(** A subplan table for multi-query optimization: canonical algebra
    subtree ({!Algebra.equal}/{!Algebra.hash}) → the one shared node
    maintaining it, refcounted by direct parents. Views built over the
    same cache share every structurally-equal subtree: the shared node
    is maintained exactly once per delta batch (the first parent
    computes and folds it; the others reuse the memoized result bag —
    counted as [serve.dedup_hits]), and a new registration initializes
    only the nodes it adds. Sharing is only sound among views fed the
    {e same} delta stream — one cache per serving registry, never across
    independently-stepped chains. *)

val cache_create : unit -> cache

val cache_nodes : cache -> int
(** Live entries (distinct cached subplans). *)

val cache_shared : cache -> int
(** Entries currently referenced by more than one parent — the
    [serve.shared_nodes] gauge. *)

val create : ?cache:cache -> Database.t -> Algebra.t -> t
(** Runs the full query once against the current database state. With
    [cache], subtrees already present are adopted live (no
    re-initialization) and new subtrees are added to the cache. *)

val release : cache -> t -> unit
(** Drop the view's references from the cache; entries orphaned by the
    drop are evicted so they can never leak stale state into a later
    {!create}. Required when unregistering a cache-built view; harmless
    for views the cache never saw. *)

val schema : t -> Schema.t

val result : t -> Bag.t
(** Current answer with multiplicities. Do not mutate. *)

val update : t -> Delta.t -> unit
(** Folds a batch of base-table changes (already applied to the database)
    into the materialized answer.

    Raises [Failure] if maintenance drives some count negative — that would
    mean the delta disagrees with the database state the view believes in. *)

val refresh : t -> unit
(** Recomputes the view from scratch (used to re-anchor, and by tests). *)

val algebra : t -> Algebra.t

val node_states : t -> Bag.t list
(** The complete restorable state of the view: one materialized bag per
    non-scan node, in pre-order (scan nodes alias live base tables and are
    the database's to checkpoint). Join indexes and aggregation
    accumulators are derivable and deliberately excluded. The returned
    bags are copies — safe to serialize while the view keeps updating. *)

val of_states : ?cache:cache -> Database.t -> Algebra.t -> Bag.t list -> t
(** Rebuild a view over [db] from {!node_states} of an identical plan
    captured when [db] was in its current state — {e without} evaluating
    the query: structure comes from the algebra, materialized results from
    the state list, and auxiliary indexes are reconstructed from those
    bags. Raises [Failure] when the state list does not match the plan
    shape. *)
