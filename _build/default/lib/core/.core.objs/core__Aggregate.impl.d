lib/core/aggregate.ml: Hashtbl List Marginals Option Relational Row Value
