lib/ie/generative_eval.ml: Array Chain_inference Core Crf Factorgraph Labels Mcmc Relational Unix
