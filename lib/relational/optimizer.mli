(** Algebraic rewrites applied to parsed queries.

    The rewriter is purely syntactic (alias-driven) so it runs without a
    database: selections over products are split by which side their columns
    belong to, single-side conjuncts are pushed down, and cross-side equality
    conjuncts turn the product into a join — the plan shape both the naive
    evaluator and the view maintainer want.

    Role in the pipeline (§4): runs once between {!Sql.parse} and either
    evaluator. Getting joins recognized before {!View.create} is what keeps
    Algorithm 1's per-delta work proportional to |Δ| rather than to a
    cross product (Eq. 6's Q′ terms). *)

val optimize : Algebra.t -> Algebra.t

val exposed_aliases : Algebra.t -> string list
(** Alias (or table-name) prefixes a subtree's columns may carry. *)
