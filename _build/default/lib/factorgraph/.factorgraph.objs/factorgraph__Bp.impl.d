lib/factorgraph/bp.ml: Array Assignment Domain Graph Hashtbl List Logspace
