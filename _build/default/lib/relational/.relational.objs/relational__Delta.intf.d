lib/relational/delta.mli: Bag Row
