lib/ie/labels.ml: Array Factorgraph List String
