(* The paper's headline application end to end (§5.1–5.3):

   1. generate a news-like corpus and load it into the TOKEN relation;
   2. train a skip-chain CRF with SampleRank (§5.2);
   3. evaluate paper Query 1 — person-mention strings — with both the naive
      (Algorithm 3) and view-maintenance (Algorithm 1) evaluators, comparing
      their wall-clock time for identical estimates. *)

open Core

let () =
  let docs = Ie.Corpus.generate_tokens ~seed:7 ~n_tokens:8_000 in
  let db = Relational.Database.create () in
  ignore (Ie.Token_table.load db docs : Relational.Table.t);
  let world = World.create db in
  Printf.printf "corpus: %d documents, %d tokens\n" (List.length docs)
    (Ie.Corpus.total_tokens docs);

  (* Train from an empty weight vector. *)
  let params = Factorgraph.Params.create () in
  let crf = Ie.Crf.create ~params world in
  let t0 = Unix.gettimeofday () in
  let report = Ie.Training.train ~steps:150_000 ~rng:(Mcmc.Rng.create 1) crf in
  Printf.printf "SampleRank: %d steps, %d weight updates, %.1fs; decode accuracy %.3f\n"
    report.Ie.Training.steps report.updates
    (Unix.gettimeofday () -. t0)
    report.accuracy_after;

  (* Evaluate Query 1 under both strategies on identical chains. *)
  let sql = "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'" in
  let run strategy seed =
    let rng = Mcmc.Rng.create seed in
    let proposal = Ie.Proposals.batched_flip ~rng crf in
    let pdb = Pdb.create ~world ~proposal ~rng in
    let t0 = Unix.gettimeofday () in
    let m = Evaluator.evaluate_sql strategy pdb ~sql ~thin:2_000 ~samples:40 in
    (m, Unix.gettimeofday () -. t0)
  in
  let m_mat, t_mat = run Evaluator.Materialized 42 in
  let _, t_naive = run Evaluator.Naive 42 in
  Printf.printf "\nQuery 1: %s\n" sql;
  Printf.printf "materialized evaluator: %.2fs | naive evaluator: %.2fs\n" t_mat t_naive;

  let top =
    Marginals.estimates m_mat
    |> List.sort (fun (_, a) (_, b) -> compare b a)
    |> fun l -> List.filteri (fun i _ -> i < 12) l
  in
  Printf.printf "\ntop person-mention strings (probability of being in the answer):\n";
  List.iter
    (fun (row, p) ->
      Printf.printf "  %-12s %.3f\n" (Relational.Value.to_string (Relational.Row.get row 0)) p)
    top
