(** Structured trace events: a fixed-capacity ring buffer plus pluggable
    sinks.

    Where {!Metrics} aggregates, tracing keeps {e individual} events —
    "sample 17 observed, delta had 3 rows" — so a slow run can be
    replayed step by step. Events are tiny records (timestamp, name,
    string key/value pairs). The last [capacity] events are always
    available from the in-memory ring via {!recent}; a sink
    additionally receives every event as it is emitted:

    - {!sink.Null} — ring only (the default);
    - {!sink.Stderr} — one human-readable line per event on stderr;
    - a JSON-lines channel ({!sink_to_file}) — one JSON object per
      line, suitable for [jq] and for loading into trace viewers.

    Tracing has its own switch, independent of metrics collection,
    because it is much more voluminous: {!emit} is a single flag check
    when disabled. Emission takes a mutex, so events from parallel
    chains interleave but never tear. *)

type event = {
  ts_ns : int;  (** wall-clock nanoseconds, {!Timer.now_ns} *)
  name : string;  (** dot-separated, e.g. ["eval.sample"] *)
  args : (string * string) list;  (** free-form payload *)
}

type sink =
  | Null  (** ring buffer only *)
  | Stderr  (** line-per-event on stderr *)
  | Channel of out_channel  (** JSON-lines; not closed by this module *)
  | Custom of (event -> unit)  (** caller-supplied consumer *)

val set_enabled : bool -> unit
(** Turn tracing on or off process-wide. Off by default. *)

val enabled : unit -> bool

val set_sink : sink -> unit
(** Replace the sink. If the previous sink was a channel opened by
    {!sink_to_file}, it is flushed and closed. *)

val sink_to_file : string -> unit
(** Open [path] for writing and install it as a JSON-lines sink. *)

val set_capacity : int -> unit
(** Resize the ring (default 1024 events); discards buffered events. *)

val emit : ?args:(string * string) list -> string -> unit
(** [emit ~args name] records an event now. No-op while disabled. *)

val recent : unit -> event list
(** Buffered events, oldest first (at most [capacity] of them). *)

val clear : unit -> unit
(** Drop all buffered events (the sink is not touched). *)

val to_json : event -> string
(** One event as a single-line JSON object
    [{"ts_ns":..., "name":..., "args":{...}}]. *)

val close : unit -> unit
(** Flush and close a {!sink_to_file} channel and revert to {!sink.Null}.
    Safe to call when no file sink is installed. *)
