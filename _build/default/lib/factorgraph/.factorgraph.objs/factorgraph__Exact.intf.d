lib/factorgraph/exact.mli: Assignment Graph
