(** Named counters, gauges, and log-bucketed histograms.

    This is the measurement substrate behind the paper's performance
    claims (Fig 4a/4b/5/6): the instrumented hot paths — MH proposals in
    {!Mcmc.Metropolis}, delta sizes and maintenance timings in
    {!Core.Evaluator}, per-operator row counts in {!Relational.Eval} and
    {!Relational.View} — record into metrics declared here by name.
    [docs/OBSERVABILITY.md] is the catalogue of every metric the repo
    exports.

    {2 Cost model}

    Collection is globally gated by {!set_enabled} (default: off). Every
    instrumented call site checks {!enabled} once and does nothing else
    when collection is off, so the tier-1 benchmarks are unaffected by
    the instrumentation being present. When enabled, counters and
    histograms use [Atomic] operations and are therefore safe (and
    deterministic, since integer addition commutes) under concurrent
    updates from multiple [Domain]s — the per-domain chains of
    {!Mcmc.Parallel} all record into the same registry and the totals on
    join equal the sum of per-domain contributions.

    {2 Naming}

    Handles are find-or-create by name within a registry, so independent
    modules (e.g. [Core.Evaluator] and [bench/harness.ml]) can feed the
    same metric by using the same name. Re-requesting a name with a
    different metric kind raises [Invalid_argument]. *)

(** {1 Global switch} *)

val set_enabled : bool -> unit
(** Turn collection on or off process-wide. Off by default. *)

val enabled : unit -> bool
(** Current state of the switch — the one check every instrumented call
    site performs before doing any work. *)

(** {1 Registries} *)

type t
(** A registry: a named collection of metrics. Most code uses
    {!global}; tests create private registries to exercise {!merge_into}
    without interference. *)

val global : t
(** The process-wide default registry; [?reg] arguments default to it. *)

val create : unit -> t
(** A fresh empty registry. *)

val reset : t -> unit
(** Zero every metric in the registry {e without} invalidating existing
    handles: counters drop to 0, gauges to [nan]-free 0.0, histograms to
    empty. Used by tests and by long-running processes that snapshot
    periodically. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] folds [src] into [into]: counters add,
    histograms add bucket-wise (max of maxima), gauges take the [src]
    value. Metrics missing from [into] are created. Raises
    [Invalid_argument] on a name registered with different kinds. *)

(** {1 Counters}

    Monotonically increasing integers (event counts, accumulated
    nanoseconds). *)

type counter

val counter : ?reg:t -> string -> counter
(** Find or create the counter [name] in [reg] (default {!global}). *)

val incr : counter -> unit
(** Add 1. No-op while collection is disabled. *)

val add : counter -> int -> unit
(** Add [n]. No-op while collection is disabled. *)

val counter_value : counter -> int
val counter_name : counter -> string

(** {1 Gauges}

    Last-write-wins floats for level measurements (table sizes,
    configured scale). *)

type gauge

val gauge : ?reg:t -> string -> gauge
val set_gauge : gauge -> float -> unit
(** No-op while collection is disabled. *)

val gauge_value : gauge -> float
val gauge_name : gauge -> string

(** {1 Histograms}

    Log-bucketed (powers of two) distributions of non-negative integer
    samples — delta cardinalities, per-proposal latencies in
    nanoseconds. Bucket 0 collects samples [<= 0]; bucket [k >= 1]
    collects samples in [[2{^k-1}, 2{^k} - 1]], so relative resolution
    is a constant factor of 2 over the whole 62-bit range. *)

type histogram

val histogram : ?reg:t -> string -> histogram

val observe : histogram -> int -> unit
(** Record one sample. No-op while collection is disabled. *)

val hist_count : histogram -> int
(** Number of samples recorded. *)

val hist_sum : histogram -> int
(** Sum of all samples. Each sample is added exactly as given — the sum
    is not subject to bucketing error. *)

val hist_max : histogram -> int
(** Largest sample seen, or 0 if empty. *)

val hist_mean : histogram -> float
(** [hist_sum / hist_count], or 0.0 if empty. *)

val hist_buckets : histogram -> (int * int * int) list
(** Non-empty buckets as [(lo, hi, count)], inclusive bounds, ascending. *)

val quantile : histogram -> float -> int
(** [quantile h q] estimates the [q]-quantile ([0. <= q <= 1.]) as the
    upper bound of the bucket containing it — an overestimate by at most
    a factor of 2. 0 if the histogram is empty. *)

val hist_name : histogram -> string

val bucket_index : int -> int
(** The bucket a sample falls into (exposed for tests): [bucket_index v]
    is 0 for [v <= 0] and [1 + floor(log2 v)] otherwise. *)

val bucket_bounds : int -> int * int
(** Inclusive [(lo, hi)] range of a bucket index; [(min_int, 0)] for
    bucket 0. *)

(** {1 Snapshots} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      count : int;
      sum : int;
      max : int;
      buckets : (int * int * int) list;  (** [(lo, hi, count)], ascending *)
    }

val snapshot : t -> (string * value) list
(** Point-in-time values of every metric in the registry, sorted by
    name. Safe to call concurrently with updates (each metric is read
    atomically; the set as a whole is not a consistent cut). *)

val find : t -> string -> value option
(** The current value of one metric by name, if registered. *)
