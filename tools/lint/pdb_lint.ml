(* pdb_lint — invariant linter for the sampler/view stack.

   Usage:
     pdb_lint [--root DIR] [--doc PATH] [--json PATH] [--summaries PATH] [--quiet]
     pdb_lint --list-rules
     pdb_lint --self-test

   Exit codes: 0 clean, 1 violations found, 2 self-test failure or
   internal error. See docs/STATIC_ANALYSIS.md for the rule catalogue
   and allowlist syntax. *)

(* pdb_lint: allow-file R3 — this CLI entry point owns stdout/stderr: the
   text/JSON reports and self-test verdicts are its entire purpose. *)

let ( // ) = Filename.concat

(* ------------------------------------------------------------------ *)
(* Self-test: seed one violation per rule in a temp tree, assert each  *)
(* is caught, and assert the allowlist silences a seeded twin.         *)
(* ------------------------------------------------------------------ *)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (path // e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    Sys.mkdir path 0o755
  end

(* Each seed is (relative path, expected rule id, source). Every violation
   reported in a seed file must carry that file's expected rule — a seed
   tripping a foreign rule is itself a self-test failure. *)
let seeds =
  [ ( "lib/relational/seed_r1.ml",
      "R1",
      "let bad_eq (a : string) b = a = b\n\
       let bad_sort xs = List.sort Stdlib.compare xs\n\
       let bad_hash x = Hashtbl.hash x\n\
       let bad_tbl () : (string, int) Hashtbl.t = Hashtbl.create 8\n" );
    (* The narrowed immediate-operand exemptions: comparing against [] or a
       0-ary polymorphic variant must fire (pattern-match instead), while
       true/false/None/() comparisons stay exempt — the exact-count check
       below pins both directions. *)
    ( "lib/relational/seed_r1_immediate.ml",
      "R1",
      "let bad_nil xs = xs = []\n\
       let bad_nonnil xs = xs <> []\n\
       let bad_tag s = s = `L\n\
       let ok_none o = o = None\n\
       let ok_bool b = b = true\n\
       let ok_unit u = u = ()\n" );
    ( "lib/relational/seed_r2.ml",
      "R2",
      "let wall () = Unix.gettimeofday ()\nlet cpu () = Sys.time ()\n" );
    ( "lib/relational/seed_r3.ml",
      "R3",
      "let shout () = print_endline \"loud\"\n" );
    ( "lib/relational/seed_r4.ml",
      "R4",
      "let quiet f = try f () with _ -> 0\n" );
    ( "lib/relational/seed_r5.ml",
      "R5",
      "let peek x = Obj.repr x\n" );
    ( "lib/relational/seed_r6.ml",
      "R6",
      "let m = Obs.Metrics.counter \"seed.uncatalogued\"\n\
       let g = Obs.Metrics.gauge \"seed.kind\"\n\
       let ping () = Obs.Trace.emit \"seed.event\"\n" );
    (* In lib/serve so the seed sits in R7's directory scope; the
       destructuring match must NOT fire (patterns are free). *)
    ( "lib/serve/seed_r7.ml",
      "R7",
      "let box s = Relational.Value.Text s\n\
       let unbox v = match v with Relational.Value.Text s -> s | _ -> \"\"\n" );
    (* R8 direct: an unordered iteration callback writing wire bytes. *)
    ( "lib/serve/seed_r8_direct.ml",
      "R8",
      "let dump buf tbl =\n\
      \  Hashtbl.iter (fun k v -> Buffer.add_string buf (k ^ string_of_int v)) tbl\n" );
    (* R8 through one helper level: the fold's order-tainted return value
       travels through [snapshot] into the codec sink — only the
       interprocedural summary can see it. *)
    ( "lib/checkpoint/seed_r8_helper.ml",
      "R8",
      "let snapshot t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []\n\
       let write buf t = Codec.W.list Codec.W.string buf (snapshot t)\n" );
    ( "lib/mcmc/seed_r9_direct.ml",
      "R9",
      "let jitter () = Random.float 1.0\n" );
    (* R9 through one helper level: [pick_index] never touches Random.*
       itself; its violation exists only because [noise]'s summary says
       consumes-randomness. *)
    ( "lib/mcmc/seed_r9_helper.ml",
      "R9",
      "let noise () = Random.bits ()\n\
       let pick_index n = noise () mod n\n" );
    ( "lib/serve/seed_r10_direct.ml",
      "R10",
      "let port () = Sys.getenv \"PDB_PORT\"\n" );
    (* R10 through one helper level, same shape as the R9 twin. *)
    ( "lib/serve/seed_r10_helper.ml",
      "R10",
      "let raw () = Sys.getenv_opt \"PDB_ADDR\"\n\
       let addr () = match raw () with Some a -> a | None -> \"/tmp/pdb.sock\"\n" );
    (* A sprintf-built metric name whose wildcard pattern matches nothing
       in the catalogue must fire R6 (the pre-fix matcher saw only a bare
       '*' and reported it as not statically analyzable). *)
    ( "lib/relational/seed_r6_sprintf.ml",
      "R6",
      "let m op = Obs.Metrics.counter (Printf.sprintf \"seed.sprintf.%s.missing\" op)\n" )
  ]

(* Fixtures that must produce NO violations: sanitizer recognition, the
   sanctioned boundary files, and sprintf names that match the catalogue.
   Any violation in one of these is a self-test failure. *)
let clean_seeds =
  [ (* List.sort launders the fold's order taint; Hashtbl.length is an
       order-insensitive reduction. Neither may reach R8. *)
    ( "lib/checkpoint/seed_r8_sorted.ml",
      "let snapshot t =\n\
      \  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])\n\
       let write buf t = Codec.W.list Codec.W.string buf (snapshot t)\n\
       let count buf t = Codec.W.uvarint buf (Hashtbl.length t)\n" );
    (* lib/prng/prng.ml is the sanctioned Random.* boundary: no R9 inside
       it, and no R9 for callers drawing through it. *)
    ("lib/prng/prng.ml", "let bits () = Random.bits ()\n");
    ("lib/mcmc/seed_r9_clean.ml", "let draw rng = Prng.bits rng\n");
    (* bin/ and the failpoint shim own ambient env reads (R10). The
       [<> None] compare is against an immediate, so R1 stays quiet too. *)
    ("bin/seed_cli.ml", "let port () = Sys.getenv_opt \"PDB_PORT\"\n");
    ( "lib/checkpoint/failpoint.ml",
      "let enabled () = Sys.getenv_opt \"PDB_FAILPOINT\" <> None\n" );
    (* sprintf-built name matching the catalogued seed.dyn.<op>.rows. *)
    ( "lib/relational/seed_r6_dyn.ml",
      "let m op = Obs.Metrics.counter (Printf.sprintf \"seed.dyn.%s.rows\" op)\n" )
  ]

(* The same violations under allowlist comments must be silent. *)
let allow_seed =
  ( "lib/relational/seed_allow.ml",
    "(* pdb_lint: allow no-poly-compare \xe2\x80\x94 self-test: allowlist must silence R1 *)\n\
     let ok (a : string) b = a = b\n\
     \n\
     let ok2 () =\n\
     \  (* pdb_lint: allow R2 \xe2\x80\x94 self-test: allowlist must silence R2 *)\n\
     \  Unix.gettimeofday ()\n" )

(* seed.stale is catalogued but never registered; seed.kind is catalogued
   with the wrong kind. Both directions of the R6 diff must fire. *)
let seed_doc =
  "# Observability (self-test fixture)\n\n\
   ## Metric catalogue\n\n\
   | name | kind | unit | meaning |\n\
   |---|---|---|---|\n\
   | `seed.stale` | counter | x | catalogued but gone from code |\n\
   | `seed.kind` | counter | x | registered as a gauge in code |\n\
   | `seed.dyn.<op>.rows` | counter | x | matched by a sprintf-built name |\n"

let self_test () =
  let root =
    Filename.get_temp_dir_name ()
    // Printf.sprintf "pdb_lint_selftest_%d" (Unix.getpid ())
  in
  rm_rf root;
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        Printf.eprintf "pdb_lint --self-test: FAIL: %s\n" s;
        rm_rf root;
        exit 2)
      fmt
  in
  List.iter
    (fun (rel, _, src) ->
      mkdir_p (Filename.dirname (root // rel));
      write_file (root // rel) src)
    seeds;
  let allow_rel, allow_src = allow_seed in
  write_file (root // allow_rel) allow_src;
  List.iter
    (fun (rel, src) ->
      mkdir_p (Filename.dirname (root // rel));
      write_file (root // rel) src)
    clean_seeds;
  mkdir_p (root // "docs");
  write_file (root // Lint_engine.default_doc) seed_doc;
  let run = Lint_engine.run ~root () in
  let by_file f =
    List.filter (fun v -> String.equal v.Lint_engine.file f) run.Lint_engine.violations
  in
  (* every seeded rule fires, and fires alone, in its seed file *)
  List.iter
    (fun (rel, expect, _) ->
      match by_file rel with
      | [] -> fail "rule %s: no violation caught in %s" expect rel
      | vs ->
        List.iter
          (fun v ->
            if not (String.equal v.Lint_engine.rule_id expect) then
              fail "%s: expected only %s violations, got %s (%s)" rel expect
                v.Lint_engine.rule_id v.Lint_engine.msg)
          vs)
    seeds;
  (* exactly the bad_* lines of the immediate-operand seed fire: more would
     mean an ok_* exemption regressed, fewer that a narrowing was lost *)
  (let imm = by_file "lib/relational/seed_r1_immediate.ml" in
   if not (Int.equal (List.length imm) 3) then
     fail "seed_r1_immediate: expected exactly 3 R1 violations, got %d" (List.length imm));
  (* the helper-indirection seeds must fire on the *caller* line (line 2),
     which only interprocedural summary propagation can reach: the caller
     never mentions Hashtbl/Random/Sys itself. *)
  List.iter
    (fun (rel, expect) ->
      if
        not
          (List.exists
             (fun v -> Int.equal v.Lint_engine.line 2)
             (List.filter (fun v -> String.equal v.Lint_engine.rule_id expect) (by_file rel)))
      then fail "%s: no %s violation propagated to the line-2 caller" rel expect)
    [ ("lib/checkpoint/seed_r8_helper.ml", "R8");
      ("lib/mcmc/seed_r9_helper.ml", "R9");
      ("lib/serve/seed_r10_helper.ml", "R10") ];
  (* sanitized/sanctioned fixtures stay perfectly silent *)
  List.iter
    (fun (rel, _) ->
      match by_file rel with
      | [] -> ()
      | v :: _ ->
        fail "clean fixture %s unexpectedly fired %s at line %d (%s)" rel
          v.Lint_engine.rule_id v.Lint_engine.line v.Lint_engine.msg)
    clean_seeds;
  (* the stale doc entry is reported against the doc file *)
  let doc_vs = by_file Lint_engine.default_doc in
  if
    not
      (List.exists
         (fun v ->
           String.equal v.Lint_engine.rule_id "R6"
           && Str.string_match (Str.regexp ".*seed\\.stale.*") v.Lint_engine.msg 0)
         doc_vs)
  then fail "R6: stale catalogue entry seed.stale not reported against the doc";
  (* the kind mismatch is reported *)
  if
    not
      (List.exists
         (fun v ->
           String.equal v.Lint_engine.rule_id "R6"
           && Str.string_match (Str.regexp ".*seed\\.kind.*catalogued as a counter.*")
                v.Lint_engine.msg 0)
         run.Lint_engine.violations)
  then fail "R6: kind drift on seed.kind not reported";
  (* allowlisted twins stay silent *)
  (match by_file allow_rel with
  | [] -> ()
  | v :: _ ->
    fail "allowlist failed to silence %s in %s (line %d)" v.Lint_engine.rule_id allow_rel
      v.Lint_engine.line);
  rm_rf root;
  Printf.printf "pdb_lint --self-test: OK (%d seeded violations caught across %d rules)\n"
    (List.length run.Lint_engine.violations)
    (List.length seeds);
  exit 0

(* ------------------------------------------------------------------ *)
(* CLI                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  let root = ref "." in
  let doc = ref Lint_engine.default_doc in
  let json = ref "" in
  let summaries = ref "" in
  let quiet = ref false in
  let do_self_test = ref false in
  let list_rules = ref false in
  let spec =
    [ ("--root", Arg.Set_string root, "DIR repository root to scan (default .)");
      ( "--doc",
        Arg.Set_string doc,
        Printf.sprintf "PATH metric catalogue for R6, relative to root (default %s)"
          Lint_engine.default_doc );
      ("--json", Arg.Set_string json, "PATH write a JSON report there ('-' for stdout)");
      ( "--summaries",
        Arg.Set_string summaries,
        "PATH write the interprocedural effect-summary table there ('-' for stdout)" );
      ("--quiet", Arg.Set quiet, " suppress the text report (exit code only)");
      ("--self-test", Arg.Set do_self_test, " seed one violation per rule and assert each is caught");
      ("--list-rules", Arg.Set list_rules, " print the rule catalogue and exit")
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "pdb_lint [--root DIR] [--doc PATH] [--json PATH] [--summaries PATH] [--quiet] [--self-test] [--list-rules]";
  if !list_rules then begin
    List.iter
      (fun r ->
        Printf.printf "%s %-18s %s\n     fix: %s\n" r.Lint_engine.id r.Lint_engine.rname
          r.Lint_engine.blurb r.Lint_engine.hint)
      Lint_engine.rules;
    exit 0
  end;
  if !do_self_test then self_test ();
  let run =
    try Lint_engine.run ~doc:!doc ~root:!root ()
    with e ->
      Printf.eprintf "pdb_lint: internal error: %s\n" (Printexc.to_string e);
      exit 2
  in
  if not !quiet then Lint_engine.report_text stdout run;
  (match !summaries with
  | "" -> ()
  | "-" -> print_string run.Lint_engine.summaries
  | path ->
    let oc = open_out_bin path in
    output_string oc run.Lint_engine.summaries;
    close_out oc);
  (match !json with
  | "" -> ()
  | "-" -> Lint_engine.report_json stdout run
  | path ->
    let oc = open_out_bin path in
    Lint_engine.report_json oc run;
    close_out oc);
  exit (if run.Lint_engine.violations = [] then 0 else 1)
