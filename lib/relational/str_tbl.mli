(** String-keyed hash tables: [Hashtbl.Make (String)].

    The relational layer bans the polymorphic [Hashtbl] (lint rule R1,
    docs/STATIC_ANALYSIS.md): every table must name its key's hash and
    equality so a boxed key can never silently fall back to
    [Hashtbl.hash]/[Stdlib.compare] semantics. This instance covers the
    common string-keyed case (schema/column/table-name maps); row-keyed
    tables use {!Row.Tbl}. *)

include Hashtbl.S with type key = string
