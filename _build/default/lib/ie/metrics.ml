type scores = {
  precision : float;
  recall : float;
  f1 : float;
  gold_mentions : int;
  predicted_mentions : int;
  correct_mentions : int;
  token_accuracy : float;
}

let score ~gold ~predicted =
  if Array.length gold <> Array.length predicted then
    invalid_arg "Metrics.score: length mismatch";
  let g = Labels.segments gold in
  let p = Labels.segments predicted in
  let gset = Hashtbl.create 64 in
  List.iter (fun seg -> Hashtbl.replace gset seg ()) g;
  let correct = List.length (List.filter (Hashtbl.mem gset) p) in
  let ng = List.length g and np = List.length p in
  let precision = if np = 0 then (if ng = 0 then 1. else 0.) else float_of_int correct /. float_of_int np in
  let recall = if ng = 0 then 1. else float_of_int correct /. float_of_int ng in
  let f1 =
    if precision +. recall = 0. then 0. else 2. *. precision *. recall /. (precision +. recall)
  in
  let n = Array.length gold in
  let hits = ref 0 in
  Array.iteri (fun i l -> if l = predicted.(i) then incr hits) gold;
  let token_accuracy = if n = 0 then 1. else float_of_int !hits /. float_of_int n in
  { precision; recall; f1; gold_mentions = ng; predicted_mentions = np;
    correct_mentions = correct; token_accuracy }

let score_crf crf =
  let n = Crf.n_tokens crf in
  let gold = Array.init n (Crf.truth crf) in
  let predicted = Array.init n (Crf.label crf) in
  score ~gold ~predicted

let pp fmt s =
  Format.fprintf fmt "P=%.3f R=%.3f F1=%.3f (gold %d, predicted %d, correct %d; token acc %.3f)"
    s.precision s.recall s.f1 s.gold_mentions s.predicted_mentions s.correct_mentions
    s.token_accuracy
