(** Wall-clock timers that feed {!Metrics} counters and histograms.

    Timings separate the two costs the paper's evaluation keeps apart:
    time spent {e walking} the Markov chain (Metropolis–Hastings
    proposals, §4.1) versus time spent {e evaluating} queries over
    sampled worlds (Algorithm 1 vs Algorithm 3, Fig 4a). All spans are
    reported in integer nanoseconds.

    The underlying clock is [Unix.gettimeofday] (this toolchain's [unix]
    does not expose [CLOCK_MONOTONIC]), which an NTP step can move
    backwards mid-run. Readings are therefore clamped against a
    process-wide atomic high-water mark: {!now_ns} never decreases, so
    every span computed from it is non-negative by construction. A
    backwards clock step freezes the published time until the wall clock
    catches up again — spans crossing such a step are distorted (too
    short), but never negative and never able to corrupt histograms or
    adaptive controllers that divide by them. *)

val now_ns : unit -> int
(** Current wall-clock time in integer nanoseconds since the epoch,
    clamped to be non-decreasing across the whole process (all domains
    share the high-water mark). *)

val clamp : int -> int
(** [clamp raw] folds one raw clock reading (ns) into the high-water
    mark and returns the never-decreasing result — the monotonization
    step of {!now_ns}, exposed so tests can exercise a backwards step
    without depending on the real clock misbehaving. *)

type t
(** A started timer (just the start timestamp; stack-allocatable). *)

val start : unit -> t
val elapsed_ns : t -> int
(** Nanoseconds since [start]; never negative because {!now_ns} is
    never-decreasing. *)

val seconds : int -> float
(** Convert a nanosecond span to seconds. *)

val record : Metrics.counter -> (unit -> 'a) -> 'a
(** [record c f] runs [f ()]; when collection is enabled the elapsed
    nanoseconds are added to [c]. When disabled, [f] runs with no
    clock reads at all. Exceptions from [f] propagate; the span is not
    recorded in that case. *)

val observe : Metrics.histogram -> (unit -> 'a) -> 'a
(** [observe h f] — like {!record} but records the span as one
    histogram sample. *)
