lib/core/world.ml: Database Delta Field Printf Relational Row Schema Table Value
