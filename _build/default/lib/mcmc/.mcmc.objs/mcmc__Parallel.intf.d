lib/mcmc/parallel.mli: Rng
