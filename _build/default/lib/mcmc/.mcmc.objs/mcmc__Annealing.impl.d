lib/mcmc/annealing.ml: Metropolis Proposal Rng
