lib/mcmc/graph_model.mli: Factorgraph Proposal
