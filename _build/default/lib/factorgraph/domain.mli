(** Finite domains for discrete random variables.

    A domain is an ordered set of named values; variables take values by
    index into their domain. *)

type t

val make : string list -> t
(** Raises [Invalid_argument] on duplicates or an empty list. *)

val size : t -> int
val value : t -> int -> string
val index : t -> string -> int
(** Raises [Not_found]. *)

val index_opt : t -> string -> int option
val values : t -> string list
val boolean : t
(** The two-valued domain ["false"; "true"]. *)

val pp : Format.formatter -> t -> unit
