lib/relational/csv_io.ml: Array Bag Buffer Fun In_channel List Printf Schema String Table Value
