lib/core/graph_pdb.mli: Factorgraph Field Mcmc Pdb Relational World
