lib/factorgraph/assignment.ml: Array Fun List
