type t = int array

let create n = Array.make n 0
let size = Array.length
let get (a : t) i = a.(i)
let set (a : t) i v = a.(i) <- v
let copy = Array.copy

let blit ~src ~dst =
  if Array.length src <> Array.length dst then invalid_arg "Assignment.blit: size mismatch";
  Array.blit src 0 dst 0 (Array.length src)

let with_values a changes f =
  let saved = List.map (fun (i, _) -> (i, a.(i))) changes in
  List.iter (fun (i, v) -> a.(i) <- v) changes;
  Fun.protect ~finally:(fun () -> List.iter (fun (i, v) -> a.(i) <- v) saved) f

let to_array = Array.copy
