(** Rows: fixed-arity arrays of {!Value.t}. Treated as immutable. *)

type t = Value.t array

val make : Value.t list -> t
val get : t -> int -> Value.t
val set : t -> int -> Value.t -> t
(** Functional update: returns a fresh row. *)

val append : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
