open Relational

type result = {
  ranking : (Row.t * float) list;
  samples_used : int;
  separated : bool;
}

let evaluate ?(z_score = 1.96) ?(min_samples = 20) ?(max_samples = 2000) pdb ~query ~k ~thin =
  let world = Pdb.world pdb in
  let db = Pdb.db pdb in
  let marginals = Marginals.create () in
  ignore (World.drain_delta world : Delta.t);
  let view = View.create db query in
  Marginals.observe marginals (View.result view);
  let separated = ref false in
  let samples = ref 0 in
  let check () =
    (* The ranking is stable when the k-th tuple's lower bound clears the
       (k+1)-th tuple's upper bound. Fewer than k+1 candidates: stable once
       the k-th lower bound clears 0 (no unseen tuple can rank higher than
       an interval that excludes 0... conservatively require all seen). *)
    let ranked = Confidence.top_k marginals (k + 1) in
    match List.filteri (fun i _ -> i >= k - 1) ranked with
    | [ (kth, _) ] ->
      let lo, _ = Confidence.wilson_interval ~z_score marginals kth in
      lo > 0.
    | [ (kth, _); (next, _) ] ->
      let lo, _ = Confidence.wilson_interval ~z_score marginals kth in
      let _, hi = Confidence.wilson_interval ~z_score marginals next in
      lo > hi
    | _ -> false
  in
  while (not !separated) && !samples < max_samples do
    Pdb.walk pdb ~steps:thin;
    View.update view (World.drain_delta world);
    Marginals.observe marginals (View.result view);
    incr samples;
    if !samples >= min_samples && !samples mod 10 = 0 then separated := check ()
  done;
  { ranking = Confidence.top_k marginals k; samples_used = !samples; separated = !separated }
