open Relational

(* Observability (docs/OBSERVABILITY.md): the per-record durability cost
   this module exists to minimize. "wal.append_ns" is the full append path
   (framing, buffering, and any group-commit flush it triggers);
   "wal.fsync_ns" isolates the flushes so the group-commit amortization is
   visible; "wal.append_bytes" accumulates framed bytes, the numerator of
   the bytes-per-sample claim the bench gate enforces. *)
let m_append_ns = Obs.Metrics.histogram "wal.append_ns"
let m_append_bytes = Obs.Metrics.counter "wal.append_bytes"
let m_fsync_ns = Obs.Metrics.histogram "wal.fsync_ns"

type delta = (string * (Row.t * int) list) list

type record =
  | Sample of {
      steps : int;
      proposed : int;
      accepted : int;
      rng : string;
      delta : delta;
    }
  | Register of { id : int; name : string; algebra : Algebra.t }
  | Unregister of { id : int }
  | Absorb of { delta : delta }

(* ---------- format constants ---------- *)

let magic = "PDBWAL"
let version = 1

let kind_tag = function
  | Sample _ -> 1
  | Register _ -> 2
  | Unregister _ -> 3
  | Absorb _ -> 4

let kind_tags = [ (1, "sample"); (2, "register"); (3, "unregister"); (4, "absorb") ]

(* ---------- record codec ---------- *)

let enc_delta b (d : delta) =
  Codec.W.list b
    (fun b (table, entries) ->
      Codec.W.string b table;
      Codec.W.list b Wire.enc_entry entries)
    d

let dec_delta r : delta =
  Codec.R.list r (fun r ->
      let table = Codec.R.string r in
      (table, Codec.R.list r Wire.dec_entry))

let encode_record rec_ =
  let b = Codec.W.create () in
  Codec.W.u8 b (kind_tag rec_);
  (match rec_ with
  | Sample { steps; proposed; accepted; rng; delta } ->
      Codec.W.uvarint b steps;
      Codec.W.uvarint b proposed;
      Codec.W.uvarint b accepted;
      Codec.W.string b rng;
      enc_delta b delta
  | Register { id; name; algebra } ->
      Codec.W.uvarint b id;
      Codec.W.string b name;
      Wire.enc_algebra b algebra
  | Unregister { id } -> Codec.W.uvarint b id
  | Absorb { delta } -> enc_delta b delta);
  Codec.W.contents b

let decode_record s =
  let r = Codec.R.of_string s in
  let rec_ =
    match Codec.R.u8 r with
    | 1 ->
        let steps = Codec.R.uvarint r in
        let proposed = Codec.R.uvarint r in
        let accepted = Codec.R.uvarint r in
        let rng = Codec.R.string r in
        Sample { steps; proposed; accepted; rng; delta = dec_delta r }
    | 2 ->
        let id = Codec.R.uvarint r in
        let name = Codec.R.string r in
        Register { id; name; algebra = Wire.dec_algebra r }
    | 3 -> Unregister { id = Codec.R.uvarint r }
    | 4 -> Absorb { delta = dec_delta r }
    | n -> raise (Codec.Corrupt (Printf.sprintf "bad WAL record kind %d" n))
  in
  if not (Codec.R.at_end r) then
    raise (Codec.Corrupt "trailing bytes after WAL record");
  rec_

(* ---------- framing ---------- *)

let crc_le crc =
  String.init 4 (fun i ->
      Char.chr (Int32.to_int (Int32.shift_right_logical crc (8 * i)) land 0xff))

(* frame = uvarint payload-length ∥ payload ∥ CRC-32 LE, CRC over the
   length bytes and payload — W.string spells exactly the first two
   fields. The trailing CRC is what makes a partially written frame
   detectable: the checksum arrives last, so no prefix of a frame can
   validate. *)
let frame_of_payload payload =
  let b = Codec.W.create () in
  Codec.W.string b payload;
  let body = Codec.W.contents b in
  body ^ crc_le (Codec.crc32 body)

let encode_frame rec_ = frame_of_payload (encode_record rec_)

let header ~base_samples =
  if base_samples < 0 then invalid_arg "Wal.header: negative base_samples";
  let b = Codec.W.create () in
  String.iter (fun c -> Codec.W.u8 b (Char.code c)) magic;
  Codec.W.u8 b version;
  Codec.W.uvarint b base_samples;
  let body = Codec.W.contents b in
  body ^ crc_le (Codec.crc32 body)

(* ---------- raw byte scanning (recovery must not trust lengths) ---------- *)

(* LEB128 uvarint directly off the file image; None when the bytes run out
   or the groups overflow a word — both mean "not a whole varint here". *)
let scan_uvarint s pos =
  let n = String.length s in
  let rec go pos shift acc =
    if pos >= n || shift > Sys.int_size then None
    else
      let c = Char.code s.[pos] in
      let acc = acc lor ((c land 0x7f) lsl shift) in
      if c land 0x80 = 0 then Some (acc, pos + 1) else go (pos + 1) (shift + 7) acc
  in
  go pos 0 0

let scan_crc s pos =
  let stored = ref 0l in
  for i = 0 to 3 do
    stored :=
      Int32.logor !stored
        (Int32.shift_left (Int32.of_int (Char.code s.[pos + i])) (8 * i))
  done;
  !stored

(* ---------- writer ---------- *)

type writer = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (** frames appended since the last flush *)
  fsync_every : int;
  mutable pending : int;  (** records in [buf] *)
  mutable bytes : int;
  mutable appended : int;
  mutable closed : bool;
}

(* The writer uses a raw descriptor, not an out_channel, deliberately:
   stdlib channels flush their buffers from at_exit, so a writer abandoned
   after a simulated crash would resurrect its un-synced tail at process
   exit and corrupt the very file the recovery test just validated. An
   abandoned descriptor loses its buffer, which is exactly crash
   semantics. *)

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let mk_writer fd ~bytes ~fsync_every =
  { fd; buf = Buffer.create 1024; fsync_every; pending = 0; bytes; appended = 0; closed = false }

let create ~path ~base_samples ~fsync_every =
  if fsync_every < 0 then invalid_arg "Wal.create: negative fsync_every";
  let hdr = header ~base_samples in
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (try
     write_all fd hdr;
     Unix.fsync fd;
     Unix.close fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  fsync_dir path;
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
  mk_writer fd ~bytes:(String.length hdr) ~fsync_every

let open_append ~path ~valid_bytes ~fsync_every =
  if fsync_every < 0 then invalid_arg "Wal.open_append: negative fsync_every";
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
  (try Unix.ftruncate fd valid_bytes
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  mk_writer fd ~bytes:valid_bytes ~fsync_every

let fsync_timed fd = Obs.Timer.observe m_fsync_ns (fun () -> Unix.fsync fd)

let flush w =
  if w.pending > 0 then begin
    write_all w.fd (Buffer.contents w.buf);
    Buffer.clear w.buf;
    w.pending <- 0
  end;
  fsync_timed w.fd

let append w rec_ =
  if w.closed then invalid_arg "Wal.append: writer is closed";
  let n = w.appended + 1 in
  Failpoint.hit "wal.append" ~index:n;
  Obs.Timer.observe m_append_ns (fun () ->
      let frame = encode_frame rec_ in
      (* Fault injection: land half of the frame on disk, durably, then
         die — the canonical torn-tail crash the recovery path must
         survive. *)
      (try Failpoint.hit "wal.torn_append" ~index:n
       with Failpoint.Injected _ as e ->
         write_all w.fd (Buffer.contents w.buf);
         Buffer.clear w.buf;
         w.pending <- 0;
         write_all w.fd (String.sub frame 0 (max 1 (String.length frame / 2)));
         fsync_timed w.fd;
         raise e);
      Buffer.add_string w.buf frame;
      w.bytes <- w.bytes + String.length frame;
      w.appended <- n;
      w.pending <- w.pending + 1;
      Obs.Metrics.add m_append_bytes (String.length frame);
      if w.fsync_every > 0 && w.pending >= w.fsync_every then flush w)

let bytes w = w.bytes
let appended w = w.appended

let close w =
  if not w.closed then begin
    flush w;
    w.closed <- true;
    Unix.close w.fd
  end

let abandon w =
  if not w.closed then begin
    w.closed <- true;
    Unix.close w.fd
  end

(* ---------- recovery ---------- *)

type recovery = {
  base_samples : int;
  records : record list;
  valid_bytes : int;
  torn : bool;
}

let recover ~path =
  let s = Codec.read_file ~path in
  let n = String.length s in
  let mlen = String.length magic in
  if n < mlen + 1 + 1 + 4 then
    raise (Codec.Corrupt (Printf.sprintf "WAL header too short (%d bytes)" n));
  if not (String.equal (String.sub s 0 mlen) magic) then
    raise (Codec.Corrupt (Printf.sprintf "bad WAL magic %S" (String.sub s 0 mlen)));
  let v = Char.code s.[mlen] in
  if not (Int.equal v version) then
    raise
      (Codec.Corrupt (Printf.sprintf "unsupported WAL version %d (expected %d)" v version));
  let base_samples, hdr_end =
    match scan_uvarint s (mlen + 1) with
    | Some r -> r
    | None -> raise (Codec.Corrupt "truncated WAL header")
  in
  if hdr_end + 4 > n then raise (Codec.Corrupt "truncated WAL header");
  let stored = scan_crc s hdr_end in
  let computed = Codec.crc32 (String.sub s 0 hdr_end) in
  if not (Int32.equal stored computed) then
    raise
      (Codec.Corrupt
         (Printf.sprintf "WAL header CRC mismatch (stored %08lx, computed %08lx)" stored
            computed));
  let hdr_len = hdr_end + 4 in
  (* Scan frames forward; the first frame that is incomplete or fails its
     CRC ends the valid prefix — that is the torn group-commit tail, not
     corruption, so recovery succeeds with everything before it. *)
  let records = ref [] in
  let pos = ref hdr_len in
  let stop = ref false in
  while not !stop do
    match scan_uvarint s !pos with
    | None -> stop := true
    | Some (plen, payload_at) ->
        if plen < 0 || payload_at + plen + 4 > n then stop := true
        else begin
          let body = String.sub s !pos (payload_at + plen - !pos) in
          let stored = scan_crc s (payload_at + plen) in
          if not (Int32.equal stored (Codec.crc32 body)) then stop := true
          else begin
            (* CRC valid: a payload that will not decode can only be a
               writer bug or tampering — surface it, don't truncate. *)
            records := decode_record (String.sub s payload_at plen) :: !records;
            pos := payload_at + plen + 4
          end
        end
  done;
  { base_samples; records = List.rev !records; valid_bytes = !pos; torn = !pos < n }
