lib/core/graph_pdb.ml: Array Assignment Domain Factorgraph Field Format Graph Hashtbl Mcmc Pdb Relational World
