lib/ie/token_table.mli: Core Corpus Relational
