let first_names =
  [| "Bill"; "Hillary"; "Manny"; "Pedro"; "Theo"; "David"; "Kevin"; "Eli"; "Jason";
     "Peter"; "Nomar"; "Curt"; "Johnny"; "Derek"; "Alex"; "George"; "John"; "Maria";
     "Sandra"; "Carlos" |]

let last_names =
  [| "Clinton"; "Ramirez"; "Martinez"; "Epstein"; "Ortiz"; "Garciaparra"; "Schilling";
     "Damon"; "Jeter"; "Rodriguez"; "Smith"; "Johnson"; "Williams"; "Brown"; "Miller";
     "Rivera"; "Chen"; "Beltran"; "Varitek"; "Millar" |]

let ambiguous_city_orgs = [| "Boston"; "Houston"; "Chicago"; "Dallas"; "Phoenix" |]

let org_words =
  Array.append ambiguous_city_orgs
    [| "IBM"; "Enron"; "Microsoft"; "Google"; "Raytheon"; "Gillette"; "Fidelity";
       "Staples"; "Reuters"; "NASDAQ" |]

let org_suffixes = [| "corp"; "inc"; "group"; "systems"; "partners" |]

let locations =
  Array.append ambiguous_city_orgs
    [| "Amherst"; "Springfield"; "Worcester"; "Cambridge"; "Brooklyn"; "Manhattan";
       "Albany"; "Hartford"; "Providence"; "Concord" |]

let misc_words =
  [| "American"; "Japanese"; "Olympics"; "French"; "Grammy"; "Oscars"; "Latin";
     "Canadian"; "Brazilian"; "European" |]

let common_words =
  [| "the"; "a"; "an"; "of"; "to"; "and"; "in"; "for"; "on"; "with"; "said"; "that";
     "was"; "at"; "by"; "as"; "from"; "has"; "have"; "be"; "is"; "are"; "it"; "its";
     "his"; "her"; "their"; "after"; "before"; "during"; "while"; "against"; "between";
     "about"; "into"; "through"; "season"; "game"; "market"; "shares"; "report";
     "officials"; "yesterday"; "today"; "week"; "year"; "executive"; "spokesman";
     "announced"; "played"; "won"; "lost"; "traded"; "signed"; "met"; "visited" |]

let is_capitalized s = String.length s > 0 && s.[0] >= 'A' && s.[0] <= 'Z'
