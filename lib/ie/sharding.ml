(* String-cluster sharding. See sharding.mli for the contract. *)

type t = {
  n_shards : int;
  assignment : int array;
  weights : int array;
  clusters : int;
  cut_strings : int;
}

(* Union-find over doc-list positions, path-halving. *)
let rec find parent i =
  let p = parent.(i) in
  if p = i then i
  else begin
    parent.(i) <- parent.(p);
    find parent parent.(i)
  end

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then parent.(ra) <- rb

let lightest weights =
  let best = ref 0 in
  Array.iteri (fun s w -> if w < weights.(!best) then best := s) weights;
  !best

let plan ~shards docs =
  if shards < 1 then invalid_arg "Sharding.plan: shards must be >= 1";
  let docs = Array.of_list docs in
  let n = Array.length docs in
  if n = 0 then invalid_arg "Sharding.plan: empty corpus";
  let weight d = Array.length docs.(d).Corpus.tokens in
  (* Cluster: union documents sharing a capitalized string. *)
  let parent = Array.init n (fun i -> i) in
  let first_doc : int Relational.Str_tbl.t = Relational.Str_tbl.create 1024 in
  Array.iteri
    (fun d { Corpus.tokens; _ } ->
      Array.iter
        (fun { Corpus.string; _ } ->
          if Lexicon.is_capitalized string then begin
            match Relational.Str_tbl.find_opt first_doc string with
            | Some d0 -> union parent d0 d
            | None -> Relational.Str_tbl.replace first_doc string d
          end)
        tokens)
    docs;
  let roots = Hashtbl.create 64 in
  for d = 0 to n - 1 do
    let r = find parent d in
    Hashtbl.replace roots r
      ((match Hashtbl.find_opt roots r with Some (w, ds) -> (w + weight d, d :: ds) | None -> (weight d, [ d ])))
  done;
  let clusters = Hashtbl.length roots in
  let n_shards = min shards n in
  let weights = Array.make n_shards 0 in
  let assignment = Array.make n (-1) in
  if clusters >= n_shards then begin
    (* Whole clusters onto the lightest shard, heaviest first. *)
    let cs = Hashtbl.fold (fun _ (w, ds) acc -> (w, ds) :: acc) roots [] in
    let cs = List.sort (fun (a, _) (b, _) -> Int.compare b a) cs in
    List.iter
      (fun (w, ds) ->
        let s = lightest weights in
        weights.(s) <- weights.(s) + w;
        List.iter (fun d -> assignment.(d) <- s) ds)
      cs
  end
  else begin
    (* Fewer clusters than shards: cut clusters at document granularity
       so no shard is empty; heaviest documents first. *)
    let ds = List.init n (fun d -> (weight d, d)) in
    let ds = List.sort (fun (a, da) (b, db) -> if a = b then Int.compare da db else Int.compare b a) ds in
    List.iter
      (fun (w, d) ->
        let s = lightest weights in
        weights.(s) <- weights.(s) + w;
        assignment.(d) <- s)
      ds;
    (* A zero-token document could leave a shard empty if every document
       is empty; the n_shards <= n clamp plus heaviest-first assignment
       guarantees each of the first n_shards picks lands on a distinct
       empty shard. *)
    ()
  end;
  (* Count capitalized strings whose documents landed on >1 shard. *)
  let seen : int Relational.Str_tbl.t = Relational.Str_tbl.create 1024 in
  let cut : unit Relational.Str_tbl.t = Relational.Str_tbl.create 64 in
  Array.iteri
    (fun d { Corpus.tokens; _ } ->
      Array.iter
        (fun { Corpus.string; _ } ->
          if Lexicon.is_capitalized string then begin
            match Relational.Str_tbl.find_opt seen string with
            | None -> Relational.Str_tbl.replace seen string assignment.(d)
            | Some s0 ->
              if s0 <> assignment.(d) then Relational.Str_tbl.replace cut string ()
          end)
        tokens)
    docs;
  { n_shards; assignment; weights; clusters; cut_strings = Relational.Str_tbl.length cut }

let split t docs =
  if List.length docs <> Array.length t.assignment then
    invalid_arg "Sharding.split: doc list does not match the plan";
  let out = Array.make t.n_shards [] in
  List.iteri (fun d doc -> out.(t.assignment.(d)) <- doc :: out.(t.assignment.(d))) docs;
  Array.map List.rev out
