open Mcmc

let all_labels = Labels.all

let candidate (crf : Crf.t) pos label =
  { Proposal.delta_log_pi = Crf.delta_log_score crf ~pos label;
    log_q_ratio = 0.;
    commit = (fun () -> Crf.set_label crf ~pos label) }

let uniform_flip crf : Core.World.t Proposal.t =
  fun rng _world ->
    let pos = Rng.pick rng (Crf.unclamped_positions crf) in
    let label = Rng.pick rng all_labels in
    candidate crf pos label

let batched_flip ?(batch_docs = 5) ?(proposals_per_batch = 2000) ~rng crf : Core.World.t Proposal.t =
  let batch = ref [||] in
  let remaining = ref 0 in
  let reload () =
    let n_docs = Crf.n_docs crf in
    let k = min batch_docs n_docs in
    let chosen = Array.init k (fun _ -> Rng.int rng n_docs) in
    let positions = ref [] in
    Array.iter
      (fun d ->
        let first, stop = Crf.doc_token_range crf d in
        for p = first to stop - 1 do
          if not (Crf.is_clamped crf p) then positions := p :: !positions
        done)
      chosen;
    batch := Array.of_list !positions;
    remaining := proposals_per_batch
  in
  fun rng' _world ->
    if !remaining <= 0 || Array.length !batch = 0 then reload ();
    decr remaining;
    let pos = (!batch).(Rng.int rng' (Array.length !batch)) in
    let label = Rng.pick rng' all_labels in
    candidate crf pos label

(* Labels compatible with the BIO context around [pos]: I-T requires the
   left neighbour to be B-T/I-T, and if the right neighbour is I-T then only
   B-T/I-T keep it valid. *)
let valid_labels (crf : Crf.t) pos =
  let n = Crf.n_tokens crf in
  let left =
    if pos > 0 && Crf.doc_of crf (pos - 1) = Crf.doc_of crf pos then Some (Crf.label crf (pos - 1))
    else None
  in
  let right =
    if pos + 1 < n && Crf.doc_of crf (pos + 1) = Crf.doc_of crf pos then
      Some (Crf.label crf (pos + 1))
    else None
  in
  Array.to_list all_labels
  |> List.filter (fun l ->
         Labels.valid_transition ~prev:left l
         &&
         match right with
         | Some (Labels.I _ as r) -> Labels.valid_transition ~prev:(Some l) r
         | Some (Labels.O | Labels.B _) | None -> true)
  |> Array.of_list

let bio_constrained_flip crf : Core.World.t Proposal.t =
  fun rng _world ->
    let pos = Rng.pick rng (Crf.unclamped_positions crf) in
    let options = valid_labels crf pos in
    if Array.length options = 0 then candidate crf pos (Crf.label crf pos)
    else candidate crf pos (Rng.pick rng options)

(* Span patterns for the block proposer: all-O plus one B-T/I-T run per
   entity type. *)
let span_patterns len =
  let all_o = Array.make len Labels.O in
  let mention e = Array.init len (fun i -> if i = 0 then Labels.B e else Labels.I e) in
  Array.of_list (all_o :: List.map mention [ Labels.Per; Labels.Org; Labels.Loc; Labels.Misc ])

let is_pattern current =
  Array.exists
    (fun p -> p = current)
    (span_patterns (Array.length current))

let segment_flip ?(max_len = 3) crf : Core.World.t Proposal.t =
  fun rng _world ->
    let n = Crf.n_tokens crf in
    let start = Rng.int rng n in
    let _, stop = Crf.doc_token_range crf (Crf.doc_index_at crf start) in
    let len = min (1 + Rng.int rng max_len) (stop - start) in
    let current = Array.init len (fun i -> Crf.label crf (start + i)) in
    let touches_clamp =
      Array.exists Fun.id (Array.init len (fun i -> Crf.is_clamped crf (start + i)))
    in
    let patterns = span_patterns len in
    let target = Rng.pick rng patterns in
    let changes =
      List.init len (fun i -> (start + i, target.(i)))
      |> List.filter (fun (pos, l) -> Crf.label crf pos <> l)
    in
    if changes = [] || touches_clamp then
      { Proposal.delta_log_pi = 0.; log_q_ratio = 0.; commit = (fun () -> ()) }
    else if not (is_pattern current) then
      (* The reverse move cannot regenerate an off-pattern span: reject. *)
      { Proposal.delta_log_pi = neg_infinity; log_q_ratio = 0.; commit = (fun () -> ()) }
    else
      { Proposal.delta_log_pi = Crf.delta_log_score_multi crf changes;
        log_q_ratio = 0.;
        commit = (fun () -> Crf.set_labels_multi crf changes) }

(* Text constants compared for equality against the STRING column, anywhere
   in the plan. *)
let string_constants (q : Relational.Algebra.t) =
  let out = ref [] in
  let rec expr (e : Relational.Expr.t) =
    match e with
    | Cmp (Eq, Col c, Const (Text s)) | Cmp (Eq, Const (Text s), Col c) ->
      if String.lowercase_ascii (Relational.Schema.bare c) = "string" then out := s :: !out
    | Cmp (_, a, b) | And (a, b) | Or (a, b) | Arith (_, a, b) ->
      expr a;
      expr b
    | Not a | Like (a, _) | Is_null a -> expr a
    | Col _ | Const _ -> ()
  in
  let rec alg (q : Relational.Algebra.t) =
    match q with
    | Scan _ -> ()
    | Select (p, c) -> expr p; alg c
    | Project (_, c) | Distinct c -> alg c
    | Product (a, b) | Union (a, b) | Diff (a, b) -> alg a; alg b
    | Join (p, a, b) -> expr p; alg a; alg b
    | Group_by { child; _ } -> alg child
    | Count_join { child; sub; _ } -> alg child; alg sub
    | Order_by { child; _ } -> alg child
  in
  alg q;
  !out

let query_targeted crf query : Core.World.t Proposal.t =
  let constants = string_constants query in
  let positions =
    match constants with
    | [] -> Crf.unclamped_positions crf
    | cs ->
      let docs = Hashtbl.create 16 in
      List.iter (fun s -> List.iter (fun d -> Hashtbl.replace docs d ()) (Crf.docs_containing crf s)) cs;
      let out = ref [] in
      Hashtbl.iter
        (fun d () ->
          let first, stop = Crf.doc_token_range crf d in
          for p = first to stop - 1 do
            if not (Crf.is_clamped crf p) then out := p :: !out
          done)
        docs;
      Array.of_list !out
  in
  fun rng _world ->
    if Array.length positions = 0 then
      { Proposal.delta_log_pi = 0.; log_q_ratio = 0.; commit = (fun () -> ()) }
    else begin
      let pos = Rng.pick rng positions in
      let label = Rng.pick rng all_labels in
      candidate crf pos label
    end
