type column = { name : string; ty : Value.ty }
type t = column array

exception Ambiguous_column of string

let make cols =
  let a = Array.of_list cols in
  let seen = Str_tbl.create 8 in
  Array.iter
    (fun c ->
      if Str_tbl.mem seen c.name then failwith ("Schema.make: duplicate column " ^ c.name);
      Str_tbl.add seen c.name ())
    a;
  a

let columns s = Array.to_list s
let arity = Array.length
let column s i = s.(i)

let bare name =
  match String.rindex_opt name '.' with
  | None -> name
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)

let index_of s name =
  (* SQL identifiers are case-insensitive; exact match wins, then a
     case-insensitive full-name match, then bare-name resolution ("STRING"
     matches "T1.String" when unambiguous). *)
  let exact = ref (-1) in
  Array.iteri (fun i c -> if String.equal c.name name then exact := i) s;
  if !exact >= 0 then !exact
  else begin
    let lname = String.lowercase_ascii name in
    let ci = ref [] in
    Array.iteri
      (fun i c -> if String.equal (String.lowercase_ascii c.name) lname then ci := i :: !ci)
      s;
    match !ci with
    | [ i ] -> i
    | _ :: _ -> raise (Ambiguous_column name)
    | [] when String.contains name '.' ->
      (* A qualified name must match a qualified column — falling back to the
         bare suffix would let T1.x resolve to T2.x. *)
      raise Not_found
    | [] -> (
      let lbare = String.lowercase_ascii (bare name) in
      let matches = ref [] in
      Array.iteri
        (fun i c ->
          if String.equal (String.lowercase_ascii (bare c.name)) lbare then
            matches := i :: !matches)
        s;
      match !matches with
      | [ i ] -> i
      | [] -> raise Not_found
      | _ -> raise (Ambiguous_column name))
  end

let mem s name =
  (* An ambiguous name matched at least two columns, so it is present —
     just not resolvable to a single position. [mem] answers presence;
     only resolution ([index_of]) reports the ambiguity. *)
  match index_of s name with
  | _ -> true
  | exception Not_found -> false
  | exception Ambiguous_column _ -> true

let names s = Array.to_list (Array.map (fun c -> c.name) s)

let qualify alias s = Array.map (fun c -> { c with name = alias ^ "." ^ bare c.name }) s

let concat a b =
  let joined = Array.append a b in
  let seen = Str_tbl.create 8 in
  Array.iter
    (fun c ->
      if Str_tbl.mem seen c.name then failwith ("Schema.concat: duplicate column " ^ c.name);
      Str_tbl.add seen c.name ())
    joined;
  joined

let project s cols =
  let positions = Array.of_list (List.map (index_of s) cols) in
  let projected =
    Array.map (fun i -> { s.(i) with name = bare s.(i).name }) positions
  in
  (* Duplicate bare names after projection (e.g. projecting T1.X and T2.X)
     keep their qualified names to stay unambiguous. *)
  let counts = Str_tbl.create 8 in
  Array.iter
    (fun c ->
      Str_tbl.replace counts c.name (1 + (Option.value ~default:0 (Str_tbl.find_opt counts c.name))))
    projected;
  let projected =
    Array.mapi
      (fun j c -> if Str_tbl.find counts c.name > 1 then { c with name = s.(positions.(j)).name } else c)
      projected
  in
  (projected, positions)

let equal a b =
  Int.equal (arity a) (arity b)
  && Array.for_all2
       (fun (x : column) y -> String.equal x.name y.name && Value.ty_equal x.ty y.ty)
       a b

let pp fmt s =
  Format.fprintf fmt "(%s)"
    (String.concat ", " (List.map (fun c -> c.name) (columns s)))
