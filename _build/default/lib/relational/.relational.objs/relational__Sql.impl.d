lib/relational/sql.ml: Algebra Bag Buffer Database Delta Eval Expr List Optimizer Option Printf Row Schema String Table Value
