(* Tests for the information-extraction library: BIO labels, the synthetic
   corpus, the TOKEN relation, the lazy skip-chain CRF (validated against the
   materialized template graph), proposal distributions, SampleRank
   training, and entity resolution (validated against exact enumeration over
   partitions). *)

open Ie

let feq ?(eps = 1e-9) msg a b =
  if abs_float (a -. b) > eps then Alcotest.failf "%s: expected %.12g, got %.12g" msg a b

(* ------------------------------------------------------------------ *)
(* Labels *)

let test_labels_roundtrip () =
  Array.iter
    (fun l ->
      Alcotest.(check bool) (Labels.to_string l) true (Labels.of_string (Labels.to_string l) = l))
    Labels.all;
  Alcotest.(check int) "nine labels" 9 (Array.length Labels.all);
  Alcotest.(check int) "domain size" 9 (Factorgraph.Domain.size Labels.domain)

let test_labels_index_roundtrip () =
  Array.iter
    (fun l -> Alcotest.(check bool) "index roundtrip" true (Labels.of_index (Labels.index l) = l))
    Labels.all

let test_labels_transitions () =
  Alcotest.(check bool) "I-PER after B-PER" true
    (Labels.valid_transition ~prev:(Some (Labels.B Per)) (Labels.I Per));
  Alcotest.(check bool) "I-PER after I-PER" true
    (Labels.valid_transition ~prev:(Some (Labels.I Per)) (Labels.I Per));
  Alcotest.(check bool) "I-ORG after B-PER invalid" false
    (Labels.valid_transition ~prev:(Some (Labels.B Per)) (Labels.I Org));
  Alcotest.(check bool) "I after O invalid" false
    (Labels.valid_transition ~prev:(Some Labels.O) (Labels.I Loc));
  Alcotest.(check bool) "I at start invalid" false
    (Labels.valid_transition ~prev:None (Labels.I Misc));
  Alcotest.(check bool) "B anywhere" true (Labels.valid_transition ~prev:None (Labels.B Org))

let test_labels_segments () =
  let seq = [| Labels.B Per; Labels.I Per; Labels.O; Labels.B Org; Labels.B Loc; Labels.I Loc |] in
  Alcotest.(check bool) "segments" true
    (Labels.segments seq = [ (0, 2, Labels.Per); (3, 4, Labels.Org); (4, 6, Labels.Loc) ])

let test_labels_valid_sequence () =
  Alcotest.(check bool) "hillary clinton" true
    (Labels.valid_sequence [ Labels.B Per; Labels.O; Labels.B Per; Labels.I Per; Labels.O ]);
  Alcotest.(check bool) "orphan I" false (Labels.valid_sequence [ Labels.O; Labels.I Per ])

(* ------------------------------------------------------------------ *)
(* Corpus *)

let test_corpus_deterministic () =
  let d1 = Corpus.generate ~seed:9 () and d2 = Corpus.generate ~seed:9 () in
  Alcotest.(check bool) "same seed, same corpus" true (d1 = d2);
  let d3 = Corpus.generate ~seed:10 () in
  Alcotest.(check bool) "different seed differs" true (d1 <> d3)

let test_corpus_truth_valid_bio () =
  List.iter
    (fun { Corpus.tokens; _ } ->
      let seq = Array.to_list (Array.map (fun t -> t.Corpus.truth) tokens) in
      if not (Labels.valid_sequence seq) then Alcotest.fail "invalid truth BIO sequence")
    (Corpus.generate ~seed:4 ())

let test_corpus_target_size () =
  let docs = Corpus.generate_tokens ~seed:1 ~n_tokens:3000 in
  let n = Corpus.total_tokens docs in
  Alcotest.(check bool) "at least target" true (n >= 3000);
  Alcotest.(check bool) "not absurdly more" true (n < 3000 + 400)

let test_corpus_has_ambiguity_and_repeats () =
  let docs = Corpus.generate ~params:{ Corpus.default_params with n_docs = 200 } ~seed:2 () in
  let as_org = ref false and as_loc = ref false and repeats = ref false in
  List.iter
    (fun { Corpus.tokens; _ } ->
      let seen = Hashtbl.create 16 in
      Array.iter
        (fun { Corpus.string; truth } ->
          if Array.exists (( = ) string) Lexicon.ambiguous_city_orgs then begin
            match truth with
            | Labels.B Org -> as_org := true
            | Labels.B Loc -> as_loc := true
            | _ -> ()
          end;
          if Lexicon.is_capitalized string then begin
            if Hashtbl.mem seen string then repeats := true;
            Hashtbl.replace seen string ()
          end)
        tokens)
    docs;
  Alcotest.(check bool) "city as ORG somewhere" true !as_org;
  Alcotest.(check bool) "city as LOC somewhere" true !as_loc;
  Alcotest.(check bool) "capitalized strings repeat in-doc" true !repeats

(* ------------------------------------------------------------------ *)
(* Token table *)

let test_token_table_load () =
  let docs = Corpus.generate ~params:{ Corpus.default_params with n_docs = 3 } ~seed:6 () in
  let db = Relational.Database.create () in
  let t = Token_table.load db docs in
  Alcotest.(check int) "all tokens loaded" (Corpus.total_tokens docs) (Relational.Table.cardinal t);
  (* Every LABEL starts at "O". *)
  let res = Relational.Sql.run db "SELECT COUNT(*) FROM TOKEN WHERE LABEL='O'" in
  Alcotest.(check bool) "labels initialized to O" true
    (Relational.Bag.mem res.Relational.Eval.bag (Relational.Row.make [ Relational.Value.Int (Corpus.total_tokens docs) ]))

(* ------------------------------------------------------------------ *)
(* CRF: the lazy scorer must agree with the materialized template graph. *)

let mk_crf ?(skip_edges = true) ?(params = Crf.default_params ()) docs =
  let db = Relational.Database.create () in
  ignore (Token_table.load db docs : Relational.Table.t);
  let world = Core.World.create db in
  (world, Crf.create ~skip_edges ~params world)

let one_doc strings truths =
  [ { Corpus.id = 0;
      tokens =
        Array.of_list
          (List.map2 (fun s l -> { Corpus.string = s; truth = l }) strings truths) } ]

let test_crf_matches_template_graph () =
  (* All repeated strings capitalized so both representations build the same
     skip edges. *)
  let strings = [ "Bill"; "saw"; "IBM"; "and"; "IBM"; "with"; "Bill" ] in
  let truths =
    [ Labels.B Per; Labels.O; Labels.B Org; Labels.O; Labels.B Org; Labels.O; Labels.B Per ]
  in
  let params = Crf.default_params () in
  let _, crf = mk_crf ~params (one_doc strings truths) in
  let { Factorgraph.Templates.graph; labels; assignment } =
    Factorgraph.Templates.unroll_chain ~skip_edges:true ~params ~label_domain:Labels.domain
      ~tokens:(Array.of_list strings) ()
  in
  (* Both start all-O (domain index of "O" is 0). *)
  let rng = Mcmc.Rng.create 31 in
  for _ = 1 to 300 do
    let pos = Mcmc.Rng.int rng (List.length strings) in
    let l = Mcmc.Rng.pick rng Labels.all in
    let d_crf = Crf.delta_log_score crf ~pos l in
    let d_graph =
      Factorgraph.Graph.delta_log_score graph assignment [ (labels.(pos), Labels.index l) ]
    in
    feq ~eps:1e-9 (Printf.sprintf "delta at %d -> %s" pos (Labels.to_string l)) d_graph d_crf;
    (* Occasionally commit the change in both representations. *)
    if Mcmc.Rng.bool rng then begin
      Crf.set_label_local crf ~pos l;
      Factorgraph.Assignment.set assignment labels.(pos) (Labels.index l)
    end
  done

let test_crf_write_through () =
  let docs = one_doc [ "Bill"; "ran" ] [ Labels.B Per; Labels.O ] in
  let world, crf = mk_crf docs in
  Crf.set_label crf ~pos:0 (Labels.B Per);
  let v = Core.World.get_field world (Token_table.field_of_tok 0) in
  Alcotest.(check string) "db follows label" "B-PER" (Relational.Value.to_string v);
  Alcotest.(check bool) "delta pending" true
    (not (Relational.Delta.is_empty (Core.World.pending_delta world)))

let test_crf_accuracy_truth () =
  let docs = one_doc [ "Bill"; "ran" ] [ Labels.B Per; Labels.O ] in
  let _, crf = mk_crf docs in
  feq "initial accuracy" 0.5 (Crf.accuracy crf);
  Crf.set_labels_to_truth crf;
  feq "truth accuracy" 1.0 (Crf.accuracy crf);
  Crf.reset_labels crf;
  Alcotest.(check bool) "reset to O" true (Crf.label crf 0 = Labels.O)

let test_crf_skip_partners () =
  let docs =
    one_doc
      [ "IBM"; "the"; "IBM"; "the"; "IBM" ]
      [ Labels.B Org; Labels.O; Labels.B Org; Labels.O; Labels.B Org ]
  in
  let _, crf = mk_crf docs in
  Alcotest.(check int) "IBM has two partners" 2 (Array.length (Crf.skip_partners crf 0));
  Alcotest.(check int) "lowercase has none" 0 (Array.length (Crf.skip_partners crf 1))

let test_crf_delta_features_consistent () =
  (* Params.dot of delta_features must equal delta_log_score. *)
  let docs =
    one_doc [ "Boston"; "played"; "Boston" ] [ Labels.B Org; Labels.O; Labels.B Org ]
  in
  let params = Crf.default_params () in
  let _, crf = mk_crf ~params docs in
  let rng = Mcmc.Rng.create 8 in
  for _ = 1 to 100 do
    let pos = Mcmc.Rng.int rng 3 in
    let l = Mcmc.Rng.pick rng Labels.all in
    let from_features = Factorgraph.Params.dot params (Crf.delta_features crf ~pos l) in
    feq ~eps:1e-9 "features vs score" (Crf.delta_log_score crf ~pos l) from_features;
    if Mcmc.Rng.bool rng then Crf.set_label_local crf ~pos l
  done

(* ------------------------------------------------------------------ *)
(* Proposals *)

let test_bio_proposer_stays_valid () =
  let docs = Corpus.generate ~params:{ Corpus.default_params with n_docs = 2 } ~seed:12 () in
  let world, crf = mk_crf docs in
  let rng = Mcmc.Rng.create 13 in
  let proposal = Proposals.bio_constrained_flip crf in
  for step = 1 to 2000 do
    ignore (Mcmc.Metropolis.step rng proposal world : bool);
    if step mod 200 = 0 then
      for d = 0 to Crf.n_docs crf - 1 do
        let first, stop = Crf.doc_token_range crf d in
        let seq = List.init (stop - first) (fun i -> Crf.label crf (first + i)) in
        if not (Labels.valid_sequence seq) then
          Alcotest.failf "invalid BIO sequence in doc %d at step %d" d step
      done
  done

let test_batched_flip_runs () =
  let docs = Corpus.generate ~params:{ Corpus.default_params with n_docs = 8 } ~seed:14 () in
  let world, crf = mk_crf docs in
  let rng = Mcmc.Rng.create 15 in
  let proposal = Proposals.batched_flip ~batch_docs:2 ~proposals_per_batch:50 ~rng crf in
  let stats = Mcmc.Metropolis.fresh_stats () in
  Mcmc.Metropolis.run ~stats rng proposal world ~steps:500;
  Alcotest.(check int) "all proposals counted" 500 stats.Mcmc.Metropolis.proposed;
  Alcotest.(check bool) "some accepted" true (stats.Mcmc.Metropolis.accepted > 0)

(* ------------------------------------------------------------------ *)
(* Training *)

let test_samplerank_training_improves () =
  let docs = Corpus.generate ~params:{ Corpus.default_params with n_docs = 6 } ~seed:21 () in
  let db = Relational.Database.create () in
  ignore (Token_table.load db docs : Relational.Table.t);
  let world = Core.World.create db in
  (* Start from an empty parameter vector: everything is learned. *)
  let params = Factorgraph.Params.create () in
  let crf = Crf.create ~params world in
  let report = Training.train ~steps:60_000 ~rng:(Mcmc.Rng.create 22) crf in
  Alcotest.(check bool) "learned something" true (report.Training.updates > 0);
  Alcotest.(check bool)
    (Printf.sprintf "accuracy improves (%.3f -> %.3f)" report.Training.accuracy_before
       report.Training.accuracy_after)
    true
    (report.Training.accuracy_after > 0.9);
  (* Training must leave the initial world intact. *)
  Alcotest.(check bool) "labels reset after training" true (Crf.label crf 0 = Labels.O)

(* ------------------------------------------------------------------ *)
(* Coref: MCMC over partitions vs exact enumeration. *)

(* Enumerate set partitions of 0..n-1. *)
let rec partitions = function
  | [] -> [ [] ]
  | x :: rest ->
    List.concat_map
      (fun p ->
        let with_existing =
          List.mapi (fun i _ -> List.mapi (fun j b -> if i = j then x :: b else b) p) p
        in
        (([ x ] :: p) :: with_existing))
      (partitions rest)

let test_partitions_count () =
  (* Bell numbers: B(4) = 15 *)
  Alcotest.(check int) "B(4)" 15 (List.length (partitions [ 0; 1; 2; 3 ]))

let exact_cocluster strings i j =
  (* Score a partition with the same affinity model as Coref. *)
  let db = Relational.Database.create () in
  let _, coref = Coref.load db ~strings in
  let score p =
    List.fold_left
      (fun acc block ->
        let rec pairs = function
          | [] -> 0.
          | x :: rest -> List.fold_left (fun a y -> a +. Coref.affinity coref x y) 0. rest +. pairs rest
        in
        acc +. pairs block)
      0. p
  in
  let ps = partitions (List.init (Array.length strings) Fun.id) in
  let z = List.fold_left (fun acc p -> acc +. exp (score p)) 0. ps in
  let num =
    List.fold_left
      (fun acc p ->
        if List.exists (fun block -> List.mem i block && List.mem j block) p then
          acc +. exp (score p)
        else acc)
      0. ps
  in
  num /. z

let run_coref_chain proposal_of strings ~steps ~seed =
  let db = Relational.Database.create () in
  let world, coref = Coref.load db ~strings in
  let rng = Mcmc.Rng.create seed in
  let proposal = proposal_of coref in
  let together = ref 0 and total = ref 0 in
  for _ = 1 to steps do
    ignore (Mcmc.Metropolis.step rng proposal world : bool);
    incr total;
    if Coref.cluster_of coref 0 = Coref.cluster_of coref 1 then incr together
  done;
  (float_of_int !together /. float_of_int !total, coref)

let coref_strings = [| "John Smith"; "J. Smith"; "J. Simms"; "Bob" |]

let test_coref_move_matches_exact () =
  let exact = exact_cocluster coref_strings 0 1 in
  let est, _ = run_coref_chain Coref.move_proposal coref_strings ~steps:60_000 ~seed:31 in
  feq ~eps:0.03 "move proposal co-cluster prob" exact est

let test_coref_split_merge_matches_exact () =
  let exact = exact_cocluster coref_strings 0 1 in
  let mixed coref =
    Mcmc.Proposal.mix
      [| (0.5, Coref.move_proposal coref); (0.5, Coref.split_merge_proposal coref) |]
  in
  let est, _ = run_coref_chain mixed coref_strings ~steps:60_000 ~seed:32 in
  feq ~eps:0.03 "split-merge co-cluster prob" exact est

let test_coref_db_write_through () =
  let db = Relational.Database.create () in
  let world, coref = Coref.load db ~strings:coref_strings in
  ignore world;
  Coref.set_cluster coref ~mention:1 ~cluster:0;
  let res =
    Relational.Sql.run db "SELECT mention_id FROM MENTION WHERE cluster=0"
  in
  Alcotest.(check int) "two mentions in cluster 0" 2
    (Relational.Bag.total res.Relational.Eval.bag)

let test_coref_clusters_view () =
  let db = Relational.Database.create () in
  let _, coref = Coref.load db ~strings:coref_strings in
  Coref.set_cluster coref ~mention:1 ~cluster:0;
  let cs = Coref.clusters coref in
  Alcotest.(check bool) "cluster 0 has mentions 0,1" true
    (List.assoc 0 cs = [ 0; 1 ]);
  Alcotest.(check int) "three clusters" 3 (List.length cs)


(* ------------------------------------------------------------------ *)
(* Multi-position deltas and the segment proposer *)

let test_crf_multi_delta_matches_sequential () =
  let docs =
    one_doc [ "Bill"; "saw"; "IBM"; "and"; "IBM" ]
      [ Labels.B Per; Labels.O; Labels.B Org; Labels.O; Labels.B Org ]
  in
  let params = Crf.default_params () in
  let _, crf = mk_crf ~params docs in
  let rng = Mcmc.Rng.create 41 in
  for _ = 1 to 100 do
    (* random joint change over distinct positions *)
    let k = 1 + Mcmc.Rng.int rng 3 in
    let positions = Array.init 5 Fun.id in
    Mcmc.Rng.shuffle rng positions;
    let changes =
      List.init k (fun i -> (positions.(i), Mcmc.Rng.pick rng Labels.all))
    in
    let joint = Crf.delta_log_score_multi crf changes in
    (* reference: apply sequentially, summing single deltas, then undo *)
    let saved = List.map (fun (p, _) -> (p, Crf.label crf p)) changes in
    let sequential =
      List.fold_left
        (fun acc (p, l) ->
          let d = Crf.delta_log_score crf ~pos:p l in
          Crf.set_label_local crf ~pos:p l;
          acc +. d)
        0. changes
    in
    List.iter (fun (p, l) -> Crf.set_label_local crf ~pos:p l) saved;
    feq ~eps:1e-9 "multi delta = telescoped singles" sequential joint
  done

let test_segment_flip_valid_mcmc () =
  (* On a tiny linear-chain model, a mixture of single flips and segment
     flips must converge to the same exact marginal. *)
  let strings = [ "Bill"; "Clinton"; "ran" ] in
  let truths = [ Labels.B Per; Labels.I Per; Labels.O ] in
  let params = Crf.default_params () in
  let world, crf = mk_crf ~skip_edges:false ~params (one_doc strings truths) in
  let { Factorgraph.Templates.graph; labels; assignment } =
    Factorgraph.Templates.unroll_chain ~skip_edges:false ~params ~label_domain:Labels.domain
      ~tokens:(Array.of_list strings) ()
  in
  ignore assignment;
  let exact = Factorgraph.Exact.marginals graph (Factorgraph.Graph.new_assignment graph) in
  let p_exact = (List.assoc labels.(0) exact).(Labels.index (Labels.B Per)) in
  let rng = Mcmc.Rng.create 43 in
  let proposal =
    Mcmc.Proposal.mix
      [| (0.5, Proposals.uniform_flip crf); (0.5, Proposals.segment_flip crf) |]
  in
  Mcmc.Metropolis.run rng proposal world ~steps:5_000;
  let hits = ref 0 in
  let samples = 40_000 in
  for _ = 1 to samples do
    Mcmc.Metropolis.run rng proposal world ~steps:5;
    if Crf.label crf 0 = Labels.B Per then incr hits
  done;
  feq ~eps:0.02 "segment mixture converges to exact"
    p_exact
    (float_of_int !hits /. float_of_int samples)

(* ------------------------------------------------------------------ *)
(* Chain inference (forward-backward adapter) *)

let test_chain_inference_matches_enumeration () =
  let strings = [ "Bill"; "saw"; "Ann" ] in
  let truths = [ Labels.B Per; Labels.O; Labels.B Per ] in
  let params = Crf.default_params () in
  let _, crf = mk_crf ~skip_edges:false ~params (one_doc strings truths) in
  let { Factorgraph.Templates.graph; labels; _ } =
    Factorgraph.Templates.unroll_chain ~skip_edges:false ~params ~label_domain:Labels.domain
      ~tokens:(Array.of_list strings) ()
  in
  let exact = Factorgraph.Exact.marginals graph (Factorgraph.Graph.new_assignment graph) in
  let fb = Chain_inference.marginals crf ~doc:0 in
  List.iteri
    (fun i _ ->
      let truth_dist = List.assoc labels.(i) exact in
      Array.iteri
        (fun x p -> feq ~eps:1e-9 (Printf.sprintf "fb pos %d label %d" i x) truth_dist.(x) p)
        fb.(i))
    strings

let test_chain_inference_decode () =
  let docs = Corpus.generate ~params:{ Corpus.default_params with n_docs = 4 } ~seed:55 () in
  let db = Relational.Database.create () in
  ignore (Token_table.load db docs : Relational.Table.t);
  let world = Core.World.create db in
  let crf = Crf.create ~skip_edges:false ~params:(Crf.default_params ()) world in
  Chain_inference.decode crf;
  (* The hand-built weights should decode most tokens correctly. *)
  Alcotest.(check bool)
    (Printf.sprintf "viterbi accuracy high (%.3f)" (Crf.accuracy crf))
    true
    (Crf.accuracy crf > 0.9)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_exact_match () =
  let gold = [| Labels.B Per; Labels.I Per; Labels.O; Labels.B Org |] in
  let s = Metrics.score ~gold ~predicted:gold in
  feq "perfect P" 1. s.Metrics.precision;
  feq "perfect R" 1. s.recall;
  feq "perfect F1" 1. s.f1;
  Alcotest.(check int) "mentions" 2 s.gold_mentions

let test_metrics_boundary_error () =
  let gold = [| Labels.B Per; Labels.I Per; Labels.O |] in
  (* Predicted mention truncated: boundary mismatch = no credit. *)
  let predicted = [| Labels.B Per; Labels.O; Labels.O |] in
  let s = Metrics.score ~gold ~predicted in
  feq "P" 0. s.Metrics.precision;
  feq "R" 0. s.recall;
  feq ~eps:1e-9 "token accuracy" (2. /. 3.) s.token_accuracy

let test_metrics_type_error () =
  let gold = [| Labels.B Per; Labels.O |] in
  let predicted = [| Labels.B Org; Labels.O |] in
  let s = Metrics.score ~gold ~predicted in
  feq "type mismatch P" 0. s.Metrics.precision

let test_metrics_empty () =
  let s = Metrics.score ~gold:[| Labels.O |] ~predicted:[| Labels.O |] in
  feq "empty/empty precision" 1. s.Metrics.precision;
  feq "empty/empty recall" 1. s.recall

(* ------------------------------------------------------------------ *)
(* Annotator (the Stanford-NER substitute) *)

let test_annotator_basic () =
  let tokens = [| "Bill"; "Clinton"; "visited"; "IBM"; "corp"; "in"; "Boston" |] in
  let labels = Annotator.annotate tokens in
  Alcotest.(check bool) "person" true (labels.(0) = Labels.B Per && labels.(1) = Labels.I Per);
  Alcotest.(check bool) "org with suffix" true (labels.(3) = Labels.B Org && labels.(4) = Labels.I Org);
  Alcotest.(check bool) "bare city is LOC" true (labels.(6) = Labels.B Loc);
  Alcotest.(check bool) "filler is O" true (labels.(2) = Labels.O && labels.(5) = Labels.O)

let test_annotator_city_org () =
  let labels = Annotator.annotate [| "Boston"; "corp" |] in
  Alcotest.(check bool) "city+suffix is ORG" true
    (labels.(0) = Labels.B Org && labels.(1) = Labels.I Org)

let test_annotator_close_to_truth () =
  (* The generator draws from the same lexicons, so the annotator should
     recover most of the generated truth — like using an external NER system
     for ground truth (paper footnote 1). *)
  let docs = Corpus.generate ~params:{ Corpus.default_params with n_docs = 10 } ~seed:77 () in
  let estimated = Annotator.annotate_docs docs in
  let agree = ref 0 and total = ref 0 in
  List.iter2
    (fun { Corpus.tokens = t1; _ } { Corpus.tokens = t2; _ } ->
      Array.iteri
        (fun i tok ->
          incr total;
          if tok.Corpus.truth = t2.(i).Corpus.truth then incr agree)
        t1)
    docs estimated;
  let rate = float_of_int !agree /. float_of_int !total in
  Alcotest.(check bool) (Printf.sprintf "annotator agreement %.3f" rate) true (rate > 0.85)

let test_annotator_noise () =
  let tokens = Array.make 500 "the" in
  let noisy = Annotator.annotate ~noise:0.2 ~seed:3 tokens in
  let flipped = Array.to_list noisy |> List.filter (fun l -> l <> Labels.O) |> List.length in
  Alcotest.(check bool) "noise flips roughly 20%" true (flipped > 50 && flipped < 160)


(* ------------------------------------------------------------------ *)
(* Generative (MCDB-style) evaluation on linear chains *)

let test_generative_matches_exact () =
  let strings = [ "Bill"; "saw"; "Boston" ] in
  let truths = [ Labels.B Per; Labels.O; Labels.B Loc ] in
  let params = Crf.default_params () in
  let _, crf = mk_crf ~skip_edges:false ~params (one_doc strings truths) in
  (* Exact Pr[token 0 = B-PER] from forward-backward. *)
  let fb = Chain_inference.marginals crf ~doc:0 in
  let p_exact = fb.(0).(Labels.index (Labels.B Per)) in
  let query = Relational.Sql.parse "SELECT tok_id FROM TOKEN WHERE label='B-PER'" in
  let m =
    Generative_eval.evaluate ~rng:(Mcmc.Rng.create 91) ~crf ~query ~samples:20_000 ()
  in
  feq ~eps:0.01 "generative sampler matches exact marginal" p_exact
    (Core.Marginals.probability m (Relational.Row.make [ Relational.Value.Int 0 ]))

let test_generative_rejects_skip_chain () =
  let docs = one_doc [ "IBM"; "a"; "IBM" ] [ Labels.B Org; Labels.O; Labels.B Org ] in
  let _, crf = mk_crf ~skip_edges:true docs in
  let query = Relational.Sql.parse "SELECT tok_id FROM TOKEN" in
  match Generative_eval.evaluate ~rng:(Mcmc.Rng.create 1) ~crf ~query ~samples:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "skip-chain must be rejected — that is the point"

(* ------------------------------------------------------------------ *)
(* Evidence clamping *)

let test_clamped_positions_never_move () =
  let docs = Corpus.generate ~params:{ Corpus.default_params with n_docs = 2 } ~seed:61 () in
  let world, crf = mk_crf docs in
  Crf.clamp crf ~pos:0 (Labels.B Org);
  Crf.clamp crf ~pos:5 Labels.O;
  let rng = Mcmc.Rng.create 62 in
  let proposal =
    Mcmc.Proposal.mix
      [| (0.4, Proposals.uniform_flip crf); (0.3, Proposals.bio_constrained_flip crf);
         (0.3, Proposals.segment_flip crf) |]
  in
  Mcmc.Metropolis.run rng proposal world ~steps:5_000;
  Alcotest.(check bool) "clamp 0 intact" true (Crf.label crf 0 = Labels.B Org);
  Alcotest.(check bool) "clamp 5 intact" true (Crf.label crf 5 = Labels.O);
  Alcotest.(check int) "pool excludes clamps"
    (Crf.n_tokens crf - 2)
    (Array.length (Crf.unclamped_positions crf))

let test_clamp_shifts_posterior () =
  (* Clamping evidence must move neighbouring marginals: with token 1 pinned
     to I-PER, token 0 is forced toward B-PER by the transition weights. *)
  let strings = [ "Boston"; "Clinton" ] in
  let truths = [ Labels.B Loc; Labels.O ] in
  let params = Crf.default_params () in
  let estimate clamp_it seed =
    let world, crf = mk_crf ~skip_edges:false ~params (one_doc strings truths) in
    if clamp_it then Crf.clamp crf ~pos:1 (Labels.I Per);
    let rng = Mcmc.Rng.create seed in
    let proposal = Proposals.uniform_flip crf in
    Mcmc.Metropolis.run rng proposal world ~steps:2_000;
    let hits = ref 0 in
    let samples = 20_000 in
    for _ = 1 to samples do
      Mcmc.Metropolis.run rng proposal world ~steps:3;
      if Crf.label crf 0 = Labels.B Per then incr hits
    done;
    float_of_int !hits /. float_of_int samples
  in
  let free = estimate false 63 in
  let clamped = estimate true 64 in
  Alcotest.(check bool)
    (Printf.sprintf "clamping raises P(B-PER at 0): %.3f -> %.3f" free clamped)
    true
    (clamped > free +. 0.2)


(* ------------------------------------------------------------------ *)
(* Query-targeted proposals (§4.1) *)

let test_query_targeted_stays_in_relevant_docs () =
  let docs =
    [ { Corpus.id = 0;
        tokens =
          [| { Corpus.string = "Boston"; truth = Labels.B Loc };
             { Corpus.string = "won"; truth = Labels.O } |] };
      { Corpus.id = 1;
        tokens =
          [| { Corpus.string = "IBM"; truth = Labels.B Org };
             { Corpus.string = "fell"; truth = Labels.O } |] } ]
  in
  let world, crf = mk_crf docs in
  let query =
    Relational.Sql.parse
      "SELECT T2.STRING FROM TOKEN T1, TOKEN T2 WHERE T1.STRING='Boston' AND \
       T1.DOC_ID=T2.DOC_ID AND T2.LABEL='B-PER'"
  in
  let rng = Mcmc.Rng.create 71 in
  let proposal = Proposals.query_targeted crf query in
  Mcmc.Metropolis.run rng proposal world ~steps:3_000;
  (* Document 1 contains no 'Boston': its labels must be untouched. *)
  Alcotest.(check bool) "doc 1 untouched" true
    (Crf.label crf 2 = Labels.O && Crf.label crf 3 = Labels.O)

let test_query_targeted_matches_exact () =
  (* The restriction is exact, not an approximation, because documents are
     independent components: validate against exhaustive enumeration on a
     two-document corpus (9^6 worlds). *)
  let docs =
    [ { Corpus.id = 0;
        tokens =
          [| { Corpus.string = "Boston"; truth = Labels.B Org };
             { Corpus.string = "signed"; truth = Labels.O };
             { Corpus.string = "Carlos"; truth = Labels.B Per } |] };
      { Corpus.id = 1;
        tokens =
          [| { Corpus.string = "IBM"; truth = Labels.B Org };
             { Corpus.string = "fell"; truth = Labels.O };
             { Corpus.string = "Madrid"; truth = Labels.O } |] } ]
  in
  let params = Crf.default_params () in
  let query =
    Relational.Sql.parse
      "SELECT T2.STRING FROM TOKEN T1, TOKEN T2 WHERE T1.STRING='Boston' AND \
       T1.LABEL='B-ORG' AND T1.DOC_ID=T2.DOC_ID AND T2.LABEL='B-PER'"
  in
  (* Exact: unroll only doc 0 (doc 1 cannot contribute) and enumerate. *)
  let { Factorgraph.Templates.graph; labels; assignment } =
    Factorgraph.Templates.unroll_chain ~skip_edges:true ~params ~label_domain:Labels.domain
      ~tokens:[| "Boston"; "signed"; "Carlos" |] ()
  in
  let b_org = Labels.index (Labels.B Org) and b_per = Labels.index (Labels.B Per) in
  let exact =
    Factorgraph.Exact.event_probability graph assignment (fun a ->
        Factorgraph.Assignment.get a labels.(0) = b_org
        && (Factorgraph.Assignment.get a labels.(2) = b_per
           || Factorgraph.Assignment.get a labels.(0) = b_per))
  in
  (* "Carlos" is in the answer iff token 0 is B-ORG and some same-doc token
     with string Carlos is B-PER — only token 2 qualifies. (Token 0 being
     simultaneously B-ORG and B-PER is impossible; kept for clarity.) *)
  let db = Relational.Database.create () in
  ignore (Token_table.load db docs : Relational.Table.t);
  let world = Core.World.create db in
  let crf = Crf.create ~params world in
  let rng = Mcmc.Rng.create 73 in
  let pdb = Core.Pdb.create ~world ~proposal:(Proposals.query_targeted crf query) ~rng in
  let m =
    Core.Evaluator.evaluate ~burn_in:5_000 Core.Evaluator.Materialized pdb ~query ~thin:20
      ~samples:60_000
  in
  let est = Core.Marginals.probability m (Relational.Row.make [ Relational.Value.Text "Carlos" ]) in
  feq ~eps:0.02 "targeted sampler matches exact joint probability" exact est

let test_query_targeted_no_constants_is_global () =
  let docs = Corpus.generate ~params:{ Corpus.default_params with n_docs = 2 } ~seed:75 () in
  let world, crf = mk_crf docs in
  let query = Relational.Sql.parse "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'" in
  let rng = Mcmc.Rng.create 76 in
  let proposal = Proposals.query_targeted crf query in
  let stats = Mcmc.Metropolis.fresh_stats () in
  Mcmc.Metropolis.run ~stats rng proposal world ~steps:1_000;
  Alcotest.(check bool) "proposals happen" true (stats.Mcmc.Metropolis.accepted > 0)

(* ------------------------------------------------------------------ *)
(* Sharding *)

let shard_doc id strings =
  { Corpus.id;
    tokens = Array.of_list (List.map (fun s -> { Corpus.string = s; truth = Labels.O }) strings) }

let doc_ids l = List.map (fun d -> d.Corpus.id) l

let test_sharding_clusters_exact () =
  (* Two string-disjoint clusters — {0,1} share "Alice", {2,3} share
     "Bob"; the lowercase "the" overlap must not link them. *)
  let docs =
    [ shard_doc 0 [ "Alice"; "ran"; "the" ]; shard_doc 1 [ "the"; "Alice" ];
      shard_doc 2 [ "Bob"; "sat" ]; shard_doc 3 [ "Bob"; "the"; "fox" ] ]
  in
  let plan = Sharding.plan ~shards:2 docs in
  Alcotest.(check int) "two clusters" 2 plan.Sharding.clusters;
  Alcotest.(check int) "factor-exact: no cut strings" 0 plan.Sharding.cut_strings;
  Alcotest.(check int) "two shards" 2 plan.Sharding.n_shards;
  let a = plan.Sharding.assignment in
  Alcotest.(check bool) "cluster mates co-located" true
    (a.(0) = a.(1) && a.(2) = a.(3) && a.(0) <> a.(2));
  Alcotest.(check int) "weights cover all tokens" (Corpus.total_tokens docs)
    (Array.fold_left ( + ) 0 plan.Sharding.weights);
  let subs = Sharding.split plan docs in
  Alcotest.(check int) "split arity" 2 (Array.length subs);
  Array.iteri
    (fun s sub ->
      let expect = List.filteri (fun i _ -> a.(i) = s) docs in
      Alcotest.(check (list int)) "split preserves corpus order" (doc_ids expect) (doc_ids sub))
    subs

let test_sharding_fallback_and_clamp () =
  (* Every doc shares "Hub": one giant cluster forces the doc-granularity
     fallback, which must cut the string rather than leave shards empty. *)
  let docs =
    [ shard_doc 0 [ "Hub"; "a" ]; shard_doc 1 [ "Hub"; "b"; "c" ];
      shard_doc 2 [ "Hub" ]; shard_doc 3 [ "Hub"; "d" ] ]
  in
  let plan = Sharding.plan ~shards:3 docs in
  Alcotest.(check int) "one cluster" 1 plan.Sharding.clusters;
  Alcotest.(check int) "still three shards" 3 plan.Sharding.n_shards;
  Alcotest.(check bool) "no empty shard" true
    (Array.for_all (fun w -> w > 0) plan.Sharding.weights);
  Alcotest.(check bool) "the shared string is cut" true (plan.Sharding.cut_strings >= 1);
  let plan2 = Sharding.plan ~shards:10 docs in
  Alcotest.(check int) "width clamped to #docs" 4 plan2.Sharding.n_shards;
  Alcotest.(check bool) "shards=0 rejected" true
    (match Sharding.plan ~shards:0 docs with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "empty corpus rejected" true
    (match Sharding.plan ~shards:2 [] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_sharding_balance () =
  (* Greedy largest-first packing keeps token weights balanced on the
     synthetic corpus (single shared-lexicon cluster, so this also
     exercises the fallback on realistic data). *)
  let docs = Corpus.generate_tokens ~seed:5 ~n_tokens:4_000 in
  let plan = Sharding.plan ~shards:4 docs in
  Alcotest.(check int) "weights cover corpus" (Corpus.total_tokens docs)
    (Array.fold_left ( + ) 0 plan.Sharding.weights);
  let mx = Array.fold_left max 0 plan.Sharding.weights in
  let mn = Array.fold_left min max_int plan.Sharding.weights in
  Alcotest.(check bool) "balanced within 2x" true (mx <= 2 * mn)

let () =
  Alcotest.run "ie"
    [ ("sharding",
       [ Alcotest.test_case "clusters-exact" `Quick test_sharding_clusters_exact;
         Alcotest.test_case "fallback-and-clamp" `Quick test_sharding_fallback_and_clamp;
         Alcotest.test_case "balance" `Quick test_sharding_balance ]);
      ("labels",
       [ Alcotest.test_case "roundtrip" `Quick test_labels_roundtrip;
         Alcotest.test_case "index-roundtrip" `Quick test_labels_index_roundtrip;
         Alcotest.test_case "transitions" `Quick test_labels_transitions;
         Alcotest.test_case "segments" `Quick test_labels_segments;
         Alcotest.test_case "valid-sequence" `Quick test_labels_valid_sequence ]);
      ("corpus",
       [ Alcotest.test_case "deterministic" `Quick test_corpus_deterministic;
         Alcotest.test_case "truth-valid-bio" `Quick test_corpus_truth_valid_bio;
         Alcotest.test_case "target-size" `Quick test_corpus_target_size;
         Alcotest.test_case "ambiguity-and-repeats" `Quick test_corpus_has_ambiguity_and_repeats ]);
      ("token-table", [ Alcotest.test_case "load" `Quick test_token_table_load ]);
      ("crf",
       [ Alcotest.test_case "matches-template-graph" `Quick test_crf_matches_template_graph;
         Alcotest.test_case "write-through" `Quick test_crf_write_through;
         Alcotest.test_case "accuracy" `Quick test_crf_accuracy_truth;
         Alcotest.test_case "skip-partners" `Quick test_crf_skip_partners;
         Alcotest.test_case "features-consistent" `Quick test_crf_delta_features_consistent ]);
      ("proposals",
       [ Alcotest.test_case "bio-stays-valid" `Quick test_bio_proposer_stays_valid;
         Alcotest.test_case "batched-flip" `Quick test_batched_flip_runs ]);
      ("training", [ Alcotest.test_case "samplerank-improves" `Slow test_samplerank_training_improves ]);
      ("block-proposals",
       [ Alcotest.test_case "multi-delta" `Quick test_crf_multi_delta_matches_sequential;
         Alcotest.test_case "segment-flip-converges" `Slow test_segment_flip_valid_mcmc ]);
      ("chain-inference",
       [ Alcotest.test_case "matches-enumeration" `Quick test_chain_inference_matches_enumeration;
         Alcotest.test_case "viterbi-decode" `Quick test_chain_inference_decode ]);
      ("metrics",
       [ Alcotest.test_case "exact-match" `Quick test_metrics_exact_match;
         Alcotest.test_case "boundary-error" `Quick test_metrics_boundary_error;
         Alcotest.test_case "type-error" `Quick test_metrics_type_error;
         Alcotest.test_case "empty" `Quick test_metrics_empty ]);
      ("annotator",
       [ Alcotest.test_case "basic" `Quick test_annotator_basic;
         Alcotest.test_case "city-org" `Quick test_annotator_city_org;
         Alcotest.test_case "close-to-truth" `Quick test_annotator_close_to_truth;
         Alcotest.test_case "noise" `Quick test_annotator_noise ]);
      ("generative",
       [ Alcotest.test_case "matches-exact" `Slow test_generative_matches_exact;
         Alcotest.test_case "rejects-skip" `Quick test_generative_rejects_skip_chain ]);
      ("clamping",
       [ Alcotest.test_case "never-moves" `Quick test_clamped_positions_never_move;
         Alcotest.test_case "shifts-posterior" `Slow test_clamp_shifts_posterior ]);
      ("query-targeted",
       [ Alcotest.test_case "stays-in-docs" `Quick test_query_targeted_stays_in_relevant_docs;
         Alcotest.test_case "matches-exact" `Slow test_query_targeted_matches_exact;
         Alcotest.test_case "no-constants-global" `Quick test_query_targeted_no_constants_is_global ]);
      ("coref",
       [ Alcotest.test_case "partitions-count" `Quick test_partitions_count;
         Alcotest.test_case "move-matches-exact" `Slow test_coref_move_matches_exact;
         Alcotest.test_case "split-merge-matches-exact" `Slow test_coref_split_merge_matches_exact;
         Alcotest.test_case "db-write-through" `Quick test_coref_db_write_through;
         Alcotest.test_case "clusters-view" `Quick test_coref_clusters_view ]) ]
