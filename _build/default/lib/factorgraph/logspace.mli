(** Numerically stable log-space arithmetic. *)

val log_sum_exp : float array -> float
(** log Σ exp(xᵢ), stable under large magnitudes; [neg_infinity] for an
    empty or all-[neg_infinity] input. *)

val log_add : float -> float -> float
val normalize_log : float array -> float array
(** Exponentiates and normalizes to a probability vector. *)
