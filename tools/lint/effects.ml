(* Phase 2 of the interprocedural analyzer: per-function effect
   summaries, a monotone fixpoint over the Callgraph decls, and the sink
   rules R8–R10 (docs/STATIC_ANALYSIS.md).

   A summary is five effect booleans per decl — reads-clock,
   consumes-randomness, reads-ambient-env, performs-IO,
   writes-serialization-sink — plus [unordered_ret]: does the decl's
   return value derive from the iteration order of an unordered
   collection? Direct effects come from a syntactic walk of the decl
   body; the fixpoint then unions in the summaries of every resolvable
   callee, so an effect three helpers deep still surfaces at the public
   entry point. Sanctioned boundary files (lib/prng/prng.ml for
   randomness, lib/obs/timer.ml for the clock, bin/ and
   lib/checkpoint/failpoint.ml for ambient env) contribute *no* bits:
   calling through the sanctioned channel is the approved pattern, so
   their callers must stay clean.

   [unordered_ret] and the R8 taint check share one evaluator: an
   expression is *order-tainted* when it is an unordered [fold]/[to_seq]
   application, a call to a decl whose summary says unordered_ret, a
   let-bound variable holding such a value, or any expression built from
   a tainted part — until a sanitizer ([List.sort] and friends) or an
   order-insensitive neutralizer ([length]/[cardinal]/[mem]) launders
   it. R8 fires when a tainted value is passed to a serialization sink,
   and when an unordered [iter]/[fold] callback writes a sink directly
   (the accumulate-into-a-Buffer shape that bit the daemon's
   subscription pump). The walk visits every subexpression exactly once,
   so findings are neither duplicated nor short-circuited away. *)

open Ppxlib

module SS = Set.Make (String)

type summary = {
  s_clock : bool;
  s_rng : bool;
  s_env : bool;
  s_io : bool;
  s_sink : bool;
  s_unordered : bool;
}

let s_empty =
  { s_clock = false; s_rng = false; s_env = false; s_io = false; s_sink = false;
    s_unordered = false }

let s_union a b =
  { s_clock = a.s_clock || b.s_clock;
    s_rng = a.s_rng || b.s_rng;
    s_env = a.s_env || b.s_env;
    s_io = a.s_io || b.s_io;
    s_sink = a.s_sink || b.s_sink;
    s_unordered = a.s_unordered || b.s_unordered;
  }

let s_equal a b =
  Bool.equal a.s_clock b.s_clock && Bool.equal a.s_rng b.s_rng
  && Bool.equal a.s_env b.s_env && Bool.equal a.s_io b.s_io
  && Bool.equal a.s_sink b.s_sink && Bool.equal a.s_unordered b.s_unordered

type finding = {
  f_rule : string;  (** "R8" | "R9" | "R10" *)
  f_file : string;
  f_line : int;
  f_col : int;
  f_msg : string;
}

(* ------------------------------------------------------------------ *)
(* Scoping: sanctioned boundaries and enforcement dirs                *)
(* ------------------------------------------------------------------ *)

let under dir path =
  let n = String.length dir in
  String.length path > n
  && String.equal (String.sub path 0 n) dir
  && Char.equal path.[n] '/'

let rng_boundary file = String.equal file "lib/prng/prng.ml"
let clock_boundary file = String.equal file "lib/obs/timer.ml"

let env_boundary file =
  under "bin" file || String.equal file "lib/checkpoint/failpoint.ml"

(* R8 is enforced where serialized bytes ship: the libraries and the CLI.
   test/ and bench/ build frames only to compare them with themselves. *)
let r8_scope file = under "lib" file || under "bin" file

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* ------------------------------------------------------------------ *)
(* Sinks, sanitizers, sources                                         *)
(* ------------------------------------------------------------------ *)

(* A serialization sink is an application that commits bytes (or a
   to-be-serialized structure) to the wire or the disk image: the
   checkpoint codec writers, WAL framing, protocol/JSON frame builders,
   marginal merge/export, and Buffer writes inside the serialization
   layers themselves. Returns the sink's display name. *)
let sink_of ~file path =
  match List.rev path with
  | [] -> None
  | fn :: rev_prefix -> (
    let prev = match rev_prefix with p :: _ -> Some p | [] -> None in
    if starts_with "encode_" fn || starts_with "enc_" fn then
      Some (String.concat "." path)
    else
      match prev, fn with
      | Some "W", _ -> Some (String.concat "." path)
      | Some "Jsonx", ("obj" | "arr" | "str" | "int" | "float" | "bool" | "null") ->
        Some (String.concat "." path)
      | Some "Wal", ("append" | "header_bytes" | "frame") ->
        Some (String.concat "." path)
      | Some "Codec", ("frame" | "write_file" | "to_string") ->
        Some (String.concat "." path)
      | Some "Marginals", ("merge" | "merge_shards" | "of_counts" | "export") ->
        Some (String.concat "." path)
      | Some "Buffer", _
        when starts_with "add_" fn
             && (under "lib/serve" file || under "lib/checkpoint" file) ->
        Some (String.concat "." path)
      | _ -> None)

let is_sanitizer path =
  match List.rev path with
  | ("sort" | "sort_uniq" | "stable_sort" | "fast_sort") :: _ -> true
  | _ -> false

(* Order-insensitive reductions of an unordered collection: safe to
   serialize even though the collection itself has no stable order. *)
let is_neutralizer path =
  match List.rev path with
  | ("length" | "cardinal" | "mem" | "is_empty") :: _ -> true
  | _ -> false

let order_sensitive_fn = function
  | "iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values" -> true
  | _ -> false

let fold_fn = function "fold" | "fold_left" | "fold_right" -> true | _ -> false

let value_returning_fn = function
  | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values" -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Direct effect sites                                                *)
(* ------------------------------------------------------------------ *)

let flatten_longident l =
  try Longident.flatten_exn l with Invalid_argument _ -> []

let direct_effect_of_path = function
  | "Random" :: _ :: _ -> Some `Rng
  | [ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ] -> Some `Clock
  | [ "Sys"; ("getenv" | "getenv_opt" | "argv") ]
  | [ "Unix"; ("getenv" | "environment" | "getenv_opt") ] ->
    Some `Env
  | [ "Printf"; ("printf" | "eprintf") ]
  | [ ("print_endline" | "print_string" | "print_newline" | "prerr_endline"
      | "prerr_string" | "prerr_newline" | "output_string" | "output_bytes") ]
  | [ "Unix"; ("write" | "write_substring" | "single_write" | "read") ] ->
    Some `Io
  | _ -> None

(* The boundary files absorb their sanctioned effect: a bit set inside
   one does not exist as far as summaries and callers are concerned. *)
let effect_applies ~file = function
  | `Rng -> not (rng_boundary file)
  | `Clock -> not (clock_boundary file)
  | `Env -> not (env_boundary file)
  | `Io -> true

(* ------------------------------------------------------------------ *)
(* The analysis                                                       *)
(* ------------------------------------------------------------------ *)

type t = {
  cg : Callgraph.t;
  summaries : summary array;  (** indexed like [Callgraph.decls] *)
}

(* Rewrite [x |> f] and [f @@ x] into plain applications, and flatten
   curried applications of applications ([x |> List.sort cmp] parses
   with the partial [List.sort cmp] as the pipe's function), so the
   taint and sink logic always sees an identifier head with the full
   argument list. *)
let rec norm_apply f args =
  match f.pexp_desc, args with
  | Pexp_ident { txt = Lident "|>"; _ }, [ (Nolabel, x); (Nolabel, g) ] ->
    norm_apply g [ (Nolabel, x) ]
  | Pexp_ident { txt = Lident "@@"; _ }, [ (Nolabel, g); (Nolabel, x) ] ->
    norm_apply g [ (Nolabel, x) ]
  | Pexp_apply (g, inner), _ -> norm_apply g (inner @ args)
  | _ -> (f, args)

let head_path f =
  match f.pexp_desc with
  | Pexp_ident { txt; _ } -> flatten_longident txt
  | _ -> []

(* A fold whose callback literally reduces with a commutative-associative
   operator computes an order-insensitive value (a sum, a count, a
   conjunction): [Bag.total]'s [acc + c], [Delta.is_empty]'s
   [acc && Bag.is_empty b]. Such a result is safe to serialize even
   though the fold enumerates a Hashtbl. Only function *literals* are
   judged — a callback passed as a variable stays conservative, so
   wrappers like [Bag.fold f b init] keep their unordered-return bit. *)
let commutative_op = function
  | [ ("+" | "+." | "-" | "-." | "*" | "*." | "&&" | "||" | "land" | "lor"
      | "lxor" | "max" | "min") ]
  | [ ("Int" | "Float"); ("add" | "mul" | "max" | "min" | "logand" | "logor") ]
    -> true
  | _ -> false

let order_insensitive_callback cb =
  (* the reduction spine: every leaf either returns the accumulator
     unchanged (ident/constant) or combines with a commutative operator;
     conditionals must be insensitive on both branches, and a nested
     unordered fold is fine when its own callback is. *)
  let rec spine e =
    match e.pexp_desc with
    | Pexp_ident _ | Pexp_constant _ -> true
    | Pexp_ifthenelse (_, t, e_opt) ->
      spine t && (match e_opt with Some e -> spine e | None -> true)
    | Pexp_constraint (e, _) -> spine e
    | Pexp_apply (f, args) -> (
      let f, args = norm_apply f args in
      let path = head_path f in
      match List.rev path with
      | fn :: _ :: _ when fold_fn fn -> (
        match args with (_, inner) :: _ -> literal inner | [] -> false)
      | _ -> commutative_op path)
    | _ -> false
  and literal cb =
    match cb.pexp_desc with
    | Pexp_function (_, _, Pfunction_body b) -> spine b
    | _ -> false
  in
  literal cb

let rec pattern_vars p acc =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> SS.add txt acc
  | Ppat_alias (p, { txt; _ }) -> pattern_vars p (SS.add txt acc)
  | Ppat_tuple ps | Ppat_array ps ->
    List.fold_left (fun a p -> pattern_vars p a) acc ps
  | Ppat_construct (_, Some (_, p))
  | Ppat_variant (_, Some p)
  | Ppat_constraint (p, _)
  | Ppat_open (_, p)
  | Ppat_lazy p | Ppat_exception p ->
    pattern_vars p acc
  | Ppat_or (a, b) -> pattern_vars a (pattern_vars b acc)
  | Ppat_record (fields, _) ->
    List.fold_left (fun a (_, p) -> pattern_vars p a) acc fields
  | _ -> acc

(* [walk ~cg ~summaries ~file ~emit body] computes the order-taint of
   [body] under the current fixpoint state and, when [emit] is set,
   reports R8/R9/R10 findings. *)
let walk ~cg ~summaries ~file ~emit body =
  let resolve path = Callgraph.resolve cg ~file path in
  let callee_summary path =
    List.fold_left (fun acc i -> s_union acc summaries.(i)) s_empty (resolve path)
  in
  let report rule e msg =
    match emit with
    | None -> ()
    | Some f ->
      let p = e.pexp_loc.loc_start in
      f { f_rule = rule;
          f_file = file;
          f_line = p.Lexing.pos_lnum;
          f_col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
          f_msg = msg;
        }
  in
  (* Does [e] contain a serialization-sink application anywhere? Used on
     the callbacks of unordered iter/fold; calls into decls that sink
     count too. Pure query — never emits. *)
  let contains_sink e =
    let found = ref None in
    let it =
      object
        inherit Ast_traverse.iter as super

        method! expression e =
          (if Option.is_none !found then
             match e.pexp_desc with
             | Pexp_apply (f, args) -> (
               let f, _ = norm_apply f args in
               let path = head_path f in
               match sink_of ~file path with
               | Some name -> found := Some name
               | None ->
                 if (callee_summary path).s_sink then
                   found := Some (String.concat "." path))
             | _ -> ());
          super#expression e
      end
    in
    it#expression e;
    !found
  in
  (* Single-visit recursive walk. Every subexpression is evaluated
     exactly once: no [||] short-circuits over recursive calls, no
     re-walking of already-visited children. *)
  let rec taint env e =
    match e.pexp_desc with
    | Pexp_ident { txt; loc = _ } -> (
      match flatten_longident txt with
      | [] -> false
      | [ x ] -> SS.mem x env
      | path -> (
        (* direct R9/R10 hits (Random.*, Sys.getenv, ...) live on the
           identifier itself, not on an application node *)
        (match direct_effect_of_path path with
        | Some `Rng when effect_applies ~file `Rng ->
          report "R9" e
            (Printf.sprintf
               "`%s` consumes global randomness outside Mcmc.Rng (thread an \
                Mcmc.Rng.t instead)"
               (String.concat "." path))
        | Some `Env when effect_applies ~file `Env ->
          report "R10" e
            (Printf.sprintf
               "`%s` reads the ambient environment outside bin/ (pass the value \
                in explicitly)"
               (String.concat "." path))
        | _ -> ());
        (callee_summary path).s_unordered))
    | Pexp_apply (f, args) -> apply_taint env e f args
    | Pexp_let (_, vbs, body) ->
      let env' =
        List.fold_left
          (fun acc vb ->
            if taint acc vb.pvb_expr then pattern_vars vb.pvb_pat acc else acc)
          env vbs
      in
      taint env' body
    | Pexp_sequence (a, b) ->
      let (_ : bool) = taint env a in
      taint env b
    | Pexp_ifthenelse (c, t, e_opt) ->
      let (_ : bool) = taint env c in
      let tt = taint env t in
      let te = match e_opt with Some e -> taint env e | None -> false in
      tt || te
    | Pexp_match (scrut, cases) ->
      let scrut_t = taint env scrut in
      taint_cases ~scrut_t env cases
    | Pexp_try (body, cases) ->
      let body_t = taint env body in
      body_t || taint_cases ~scrut_t:false env cases
    | Pexp_function (_, _, Pfunction_body b) ->
      (* the closure's eventual return value carries the body's taint:
         mapping such a closure over a list yields tainted elements *)
      taint env b
    | Pexp_function (_, _, Pfunction_cases (cases, _, _)) ->
      taint_cases ~scrut_t:false env cases
    | Pexp_tuple es | Pexp_array es ->
      List.fold_left (fun acc e -> taint env e || acc) false es
    | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) -> taint env e
    | Pexp_record (fields, base) ->
      let ft =
        List.fold_left (fun acc (_, e) -> taint env e || acc) false fields
      in
      let bt = match base with Some b -> taint env b | None -> false in
      ft || bt
    | Pexp_field (e, _) -> taint env e
    | Pexp_setfield (a, _, b) ->
      let (_ : bool) = taint env a in
      let (_ : bool) = taint env b in
      false
    | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> taint env e
    | Pexp_open (_, e) | Pexp_letexception (_, e) | Pexp_letmodule (_, _, e) ->
      taint env e
    | Pexp_assert e | Pexp_lazy e -> taint env e
    | Pexp_while (c, body) ->
      let (_ : bool) = taint env c in
      let (_ : bool) = taint env body in
      false
    | Pexp_for (_, a, b, _, body) ->
      let (_ : bool) = taint env a in
      let (_ : bool) = taint env b in
      let (_ : bool) = taint env body in
      false
    | Pexp_newtype (_, e) -> taint env e
    | _ -> false
  and taint_cases ~scrut_t env cases =
    List.fold_left
      (fun acc c ->
        let env' = if scrut_t then pattern_vars c.pc_lhs env else env in
        (match c.pc_guard with
        | Some g -> ignore (taint env' g : bool)
        | None -> ());
        taint env' c.pc_rhs || acc)
      false cases
  and apply_taint env whole f args =
    let f, args = norm_apply f args in
    let path = head_path f in
    (* a non-identifier head (e.g. a computed function) is walked as a
       subexpression; identifier heads are consumed here *)
    let head_t =
      match f.pexp_desc with
      | Pexp_ident _ -> (
        match path with
        | [ x ] -> SS.mem x env
        | _ -> (
          (* report direct Random./Sys.getenv heads once, here *)
          (match direct_effect_of_path path with
          | Some `Rng when effect_applies ~file `Rng ->
            report "R9" f
              (Printf.sprintf
                 "`%s` consumes global randomness outside Mcmc.Rng (thread an \
                  Mcmc.Rng.t instead)"
                 (String.concat "." path))
          | Some `Env when effect_applies ~file `Env ->
            report "R10" f
              (Printf.sprintf
                 "`%s` reads the ambient environment outside bin/ (pass the \
                  value in explicitly)"
                 (String.concat "." path))
          | _ -> ());
          false))
      | _ -> taint env f
    in
    let arg_taints = List.map (fun (_, a) -> taint env a) args in
    let any_arg_tainted = List.exists Fun.id arg_taints in
    (* R8: a tainted value handed to a serialization sink. *)
    (match sink_of ~file path with
    | Some sink when any_arg_tainted && r8_scope file ->
      report "R8" whole
        (Printf.sprintf
           "value derived from unordered Hashtbl iteration order reaches \
            serialization sink `%s`"
           sink)
    | _ -> ());
    (* Interprocedural checks against the callee's summary. *)
    (match resolve path with
    | [] -> ()
    | idxs ->
      let s = List.fold_left (fun acc i -> s_union acc summaries.(i)) s_empty idxs in
      let callee = String.concat "." path in
      if s.s_sink && any_arg_tainted && r8_scope file && sink_of ~file path = None
      then
        report "R8" whole
          (Printf.sprintf
             "value derived from unordered Hashtbl iteration order flows into \
              `%s`, which writes a serialization sink"
             callee);
      if s.s_rng && not (rng_boundary file) then
        report "R9" whole
          (Printf.sprintf "calls `%s`, which consumes randomness outside Mcmc.Rng"
             callee);
      if s.s_env && not (env_boundary file) then
        report "R10" whole
          (Printf.sprintf "calls `%s`, which reads the ambient environment" callee));
    (* R8: unordered iter/fold whose callback writes a sink. *)
    (match List.rev path with
    | fn :: (_ :: _ as rev_prefix)
      when order_sensitive_fn fn
           && Callgraph.unordered_module cg ~file (List.rev rev_prefix)
           && r8_scope file -> (
      match
        List.find_map
          (fun (_, a) ->
            match a.pexp_desc with Pexp_function _ -> contains_sink a | _ -> None)
          args
      with
      | Some sink ->
        report "R8" whole
          (Printf.sprintf
             "unordered `%s` callback writes serialization sink `%s` — \
              iteration order reaches the wire (extract and List.sort the keys \
              first)"
             (String.concat "." path) sink)
      | None -> ())
    | _ -> ());
    (* the application's own taint *)
    let commutative_fold =
      (match List.rev path with fn :: _ -> fold_fn fn | [] -> false)
      && (match args with (_, cb) :: _ -> order_insensitive_callback cb | [] -> false)
    in
    if is_sanitizer path then false
    else if is_neutralizer path then false
    else if commutative_fold then
      (* an order-insensitive reduction launders both the collection's
         missing order and any order taint riding on the arguments *)
      head_t
    else
      let unordered_source =
        match List.rev path with
        | fn :: (_ :: _ as rev_prefix) ->
          value_returning_fn fn
          && Callgraph.unordered_module cg ~file (List.rev rev_prefix)
        | _ -> false
      in
      unordered_source
      || (callee_summary path).s_unordered
      || head_t || any_arg_tainted
  in
  taint SS.empty body

(* Direct (syntactic) effect bits of one decl body, boundary-filtered. *)
let direct_summary ~file body =
  let s = ref s_empty in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } -> (
          match direct_effect_of_path (flatten_longident txt) with
          | Some eff when effect_applies ~file eff ->
            s :=
              (match eff with
              | `Clock -> { !s with s_clock = true }
              | `Rng -> { !s with s_rng = true }
              | `Env -> { !s with s_env = true }
              | `Io -> { !s with s_io = true })
          | _ -> ())
        | Pexp_apply (f, args) -> (
          let f, _ = norm_apply f args in
          match sink_of ~file (head_path f) with
          | Some _ -> s := { !s with s_sink = true }
          | None -> ())
        | _ -> ());
        super#expression e
    end
  in
  it#expression body;
  !s

(* Identifier paths referenced anywhere in a body (call edges, including
   first-class uses). *)
let referenced_paths body =
  let acc = ref [] in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } -> (
          match flatten_longident txt with [] -> () | p -> acc := p :: !acc)
        | _ -> ());
        super#expression e
    end
  in
  it#expression body;
  !acc

let analyze cg =
  let decls = Callgraph.decls cg in
  let n = Array.length decls in
  let summaries = Array.make n s_empty in
  let direct = Array.make n s_empty in
  let edges = Array.make n [] in
  Array.iteri
    (fun i d ->
      direct.(i) <- direct_summary ~file:d.Callgraph.d_file d.Callgraph.d_body;
      let callees =
        referenced_paths d.Callgraph.d_body
        |> List.concat_map (fun p -> Callgraph.resolve cg ~file:d.Callgraph.d_file p)
        |> List.sort_uniq Int.compare
        |> List.filter (fun j -> j <> i)
      in
      edges.(i) <- callees)
    decls;
  (* Monotone boolean fixpoint: effect bits flow callee -> caller;
     unordered_ret is recomputed from the taint evaluator against the
     current summaries, which only ever gain bits, so this terminates. *)
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i d ->
        let from_callees =
          List.fold_left (fun acc j -> s_union acc summaries.(j)) direct.(i) edges.(i)
        in
        let file = d.Callgraph.d_file in
        let unordered_ret = walk ~cg ~summaries ~file ~emit:None d.Callgraph.d_body in
        let next =
          { from_callees with
            (* unordered_ret is a *dataflow* property of the return value,
               not an ambient effect: it comes only from the taint walk,
               which already accounts for calls to unordered-returning
               callees. Unioning it from [edges] like the effect bits
               would taint every caller that merely references an
               unordered-returning decl. *)
            s_unordered = unordered_ret;
            (* s_sink is direct-only: the decl's own body must apply a
               static sink. Propagating it through the whole call graph
               would flag every CLI entry point that hands any
               hash-derived value to any subsystem that eventually
               serializes — the actionable rule is one helper level deep
               (the seeded [write buf t = Codec.W.list ... (snapshot t)]
               shape), which direct summaries plus unbounded *taint*
               propagation already cover. *)
            s_sink = direct.(i).s_sink;
            (* boundary files absorb even propagated bits: their whole
               point is to be the sanctioned channel *)
            s_rng = from_callees.s_rng && not (rng_boundary file);
            s_env = from_callees.s_env && not (env_boundary file);
            s_clock = from_callees.s_clock && not (clock_boundary file);
          }
        in
        if not (s_equal next summaries.(i)) then begin
          summaries.(i) <- next;
          changed := true
        end)
      decls
  done;
  (* Enforcement pass with the final summaries. *)
  let findings = ref [] in
  Array.iter
    (fun d ->
      ignore
        (walk ~cg ~summaries ~file:d.Callgraph.d_file
           ~emit:(Some (fun f -> findings := f :: !findings))
           d.Callgraph.d_body
          : bool))
    decls;
  ({ cg; summaries }, List.rev !findings)

(* ------------------------------------------------------------------ *)
(* Summary table (--summaries)                                        *)
(* ------------------------------------------------------------------ *)

let render_table { cg; summaries } =
  let decls = Callgraph.decls cg in
  let rows = ref [] in
  Array.iteri
    (fun i d ->
      let s = summaries.(i) in
      let flag b c = if b then c else '-' in
      let bits =
        Printf.sprintf "%c%c%c%c%c%c" (flag s.s_clock 'c') (flag s.s_rng 'r')
          (flag s.s_env 'e') (flag s.s_io 'i') (flag s.s_sink 's')
          (flag s.s_unordered 'u')
      in
      rows :=
        Printf.sprintf "%s  %-44s %s:%d" bits d.Callgraph.d_fq d.Callgraph.d_file
          d.Callgraph.d_line
        :: !rows)
    decls;
  let header =
    "# pdb_lint effect summaries — c=reads-clock r=consumes-randomness \
     e=reads-ambient-env i=performs-io s=writes-serialization-sink \
     u=returns-unordered-iteration-order\n\
     # sanctioned boundary files (lib/prng/prng.ml, lib/obs/timer.ml, bin/, \
     lib/checkpoint/failpoint.ml) contribute no bits by design\n"
  in
  header ^ String.concat "\n" (List.sort String.compare !rows) ^ "\n"
