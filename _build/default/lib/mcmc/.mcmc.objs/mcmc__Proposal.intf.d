lib/mcmc/proposal.mli: Rng
