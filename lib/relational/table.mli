(** Named base relations with optional primary key and hash indexes.

    A table stores a multiset of rows. When a primary key is declared the
    table additionally maintains a key → row map and updates become
    constant-time row replacements — the access pattern MCMC needs when a
    field variable changes value.

    Role in the pipeline (§3): tables hold the single materialized world the
    sampler walks over. An accepted proposal becomes a handful of keyed
    [update] calls, each of which can be captured in a {!Delta.t} for
    Algorithm 1 (Eq. 6) while Algorithm 3 simply rescans the table.

    Two storage backends sit behind this one API. The default {e boxed}
    backend stores rows as [Value.t array] multisets. The {e columnar}
    backend ({!create_columnar}, backed by {!Col_store}) keeps one
    unboxed array per column with text cells as {!Intern} ids — the
    compact representation ROADMAP item 1 needs for the paper's
    1M–10M-token corpora (Fig 4a). Columnar tables are stricter: an
    [int] primary key is mandatory (set semantics), cells must match
    their declared types and may not be [Null], and {!rows} returns a
    fresh decoded snapshot rather than the live bag. *)

type t

val create : ?pk:string -> name:string -> Schema.t -> t
(** [create ~pk ~name schema]: [pk], when given, must name a schema column;
    inserting two rows with the same key then raises. *)

val create_columnar : pk:string -> name:string -> Schema.t -> t
(** A table on the compact columnar backend. [pk] must name a [T_int]
    column. Raises [Invalid_argument] otherwise. *)

val storage : t -> [ `Boxed | `Columnar ]
(** Which backend this table runs on. Consumers that alias {!rows} (the
    incremental view scanner) use this to decide between aliasing the
    live bag and owning a decoded copy. *)

val name : t -> string
val schema : t -> Schema.t
val pk_column : t -> string option
(** The declared primary-key column, if any. *)

val cardinal : t -> int
(** Total number of rows counting multiplicity. *)

val insert : t -> Row.t -> unit
val delete : t -> Row.t -> unit
(** Removes one occurrence. Raises [Not_found] if the row is absent. *)

val find_by_pk : t -> Value.t -> Row.t option

val cell_by_pk : t -> Value.t -> pos:int -> Value.t option
(** [cell_by_pk t k ~pos] is column [pos] of the row keyed [k] — on
    columnar storage this reads the one cell without decoding the row,
    which is what the sampler's field reads want. *)

val update_by_pk : t -> Value.t -> Row.t -> Row.t
(** [update_by_pk t k row] replaces the row keyed [k] with [row] (which must
    carry the same key) and returns the replaced row. *)

val update_field_by_pk : t -> Value.t -> column:string -> Value.t -> Row.t * Row.t
(** Point update of one field; returns [(old_row, new_row)]. *)

val rows : t -> Bag.t
(** Boxed backend: the live multiset — callers must not mutate it.
    Columnar backend: a fresh decoded snapshot (O(n), caller-owned)
    that does not track later table mutations. *)

val column_ints : t -> string -> int array option
(** Columnar backend only: the named column's raw encoding as a fresh
    int array in storage order — ints as themselves, text as {!Intern}
    ids, bools as 0/1. [None] on the boxed backend and for float
    columns. The bulk-read fast path model construction uses to avoid
    decoding millions of rows. *)

val iter : (Row.t -> int -> unit) -> t -> unit

val create_index : t -> string -> unit
(** Builds (or rebuilds) a hash index on the named column. *)

val has_index : t -> string -> bool

val distinct_keys : t -> string -> int option
(** [distinct_keys t column] is the number of distinct values in
    [column] when the table already knows it for free — via the primary
    key or a hash index — and [None] otherwise (including unknown
    columns). The optimizer's cost-based join-order pass divides
    {!cardinal} by this to estimate equi-join selectivity without ever
    scanning. *)

val lookup : t -> column:string -> Value.t -> Bag.t
(** Index lookup; raises [Invalid_argument] if no index exists on [column].
    The returned bag must not be mutated. *)

val clear : t -> unit
