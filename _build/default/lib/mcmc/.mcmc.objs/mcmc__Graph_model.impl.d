lib/mcmc/graph_model.ml: Array Assignment Domain Factorgraph Graph Logspace Proposal Rng
