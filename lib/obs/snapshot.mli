(** JSON snapshots of a metrics registry.

    A snapshot is the machine-readable record of one run — the artifact
    [bench/main.exe --metrics-out FILE] and [pdb_cli --metrics-out FILE]
    write, and the evidence behind the Fig 4a comparison (average
    maintenance cost vs average full-query cost per sampled world).

    Shape of the emitted object:

    {v
    {
      "meta":    { "cmd": "...", ... },          // caller-supplied strings
      "metrics": {
        "mcmc.proposals": 123,                   // counters: integers
        "eval.table_rows": 5000.0,               // gauges: floats
        "eval.delta_size": {                     // histograms
          "count": 99, "sum": 312, "max": 17, "mean": 3.15,
          "p50": 3, "p95": 7, "p99": 15,
          "buckets": [ { "lo": 1, "hi": 1, "count": 12 }, ... ]
        }
      },
      "derived": { "eval.materialized_speedup": 41.7, ... }
    }
    v}

    The derived section is computed from well-known metric pairs (see
    {!derived}); consumers that only care about raw data can ignore
    it. [docs/OBSERVABILITY.md] documents every name that can appear. *)

val derived : Metrics.t -> (string * float) list
(** Ratios computed from the registry's raw metrics, when the inputs are
    present and nonzero:

    - ["mcmc.acceptance_rate"] — [mcmc.accepts / mcmc.proposals];
    - ["eval.avg_full_query_ns"] — [eval.full_query_ns / eval.full_query_count];
    - ["eval.avg_maintain_ns"] — [eval.maintain_ns / eval.maintain_count];
    - ["eval.materialized_speedup"] — avg full query / avg maintain, the
      per-step Fig 4a ratio (≥ 10 at default scale on this workload);
    - ["eval.avg_delta_rows"] — [eval.delta_rows / eval.maintain_count]. *)

val to_json : ?meta:(string * string) list -> Metrics.t -> string
(** Render the registry (plus optional metadata strings) as a JSON
    document, metrics sorted by name. *)

val write_file : ?meta:(string * string) list -> path:string -> Metrics.t -> unit
(** Write {!to_json} to [path] (truncating), followed by a newline. *)
