let evaluate ?burn_in ~chains ~make ~strategy ~query ~thin ~samples () =
  let results =
    Mcmc.Parallel.map ~n:chains (fun i ->
        let pdb = make ~chain:i in
        Evaluator.evaluate ?burn_in strategy pdb ~query ~thin ~samples)
  in
  Marginals.merge results
