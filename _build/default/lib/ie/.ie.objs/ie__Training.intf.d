lib/ie/training.mli: Crf Mcmc
