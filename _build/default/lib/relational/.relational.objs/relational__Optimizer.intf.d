lib/relational/optimizer.mli: Algebra
