lib/ie/corpus.ml: Array Labels Lexicon List Random
