lib/relational/storage.mli: Database Table
