(** Deterministic fault injection for supervision tests.

    A failpoint is a named site in the code (e.g. ["pool.sample"]) that
    calls {!hit} with a monotone index. When armed for that name and
    index, the hit raises {!Injected} — simulating a worker crash at an
    exact, reproducible point in the sample stream, which is what lets
    the kill-and-resume tests assert bit-identical marginals.

    Arming is one-shot by default: after firing [times] times the
    failpoint disarms itself, so a chain resumed from a checkpoint does
    not re-crash at the same deterministic index forever.

    Disarmed hits are a single mutex-free load — safe to leave in
    production paths. *)

exception Injected of { name : string; index : int }

val arm : ?times:int -> name:string -> at:int -> unit -> unit
(** Arm the failpoint [name] to fire when [hit name ~index:at] is
    reached, [times] times (default 1) before disarming. Replaces any
    previous arming. Raises [Invalid_argument] if [times < 1] or
    [at < 0]. *)

val disarm : unit -> unit

val armed : unit -> (string * int) option
(** The currently armed [(name, at)], if any. *)

val hit : string -> index:int -> unit
(** Raise {!Injected} iff armed for this [name] and [index]. *)

val arm_from_env : unit -> unit
(** Arm from [PDB_FAILPOINT="name@index"] (or ["name@index xN"] — an
    [xN] suffix sets [times]) when the variable is set and non-empty; do
    nothing otherwise. Raises [Invalid_argument] on a malformed value. *)
