(** Proposal distributions for the NER models (§5.1).

    The paper's jump function: pick a label variable uniformly at random
    from the currently loaded batch of documents, flip it to one of the nine
    CoNLL labels; after a fixed number of proposals, load a fresh batch of
    up to five random documents. *)

val batched_flip :
  ?batch_docs:int ->
  ?proposals_per_batch:int ->
  rng:Mcmc.Rng.t ->
  Crf.t ->
  Core.World.t Mcmc.Proposal.t
(** Defaults follow §5.1: [batch_docs = 5], [proposals_per_batch = 2000].
    Symmetric within a batch, so the proposal ratio is zero. *)

val uniform_flip : Crf.t -> Core.World.t Mcmc.Proposal.t
(** Flip a uniformly random token anywhere in the corpus — the batch-free
    variant used by small tests. *)

val bio_constrained_flip : Crf.t -> Core.World.t Mcmc.Proposal.t
(** The "more intelligent jump function" suggested in Appendix 9.3: only
    proposes labels that keep the token's local BIO context valid (an I-T
    label is offered only after B-T/I-T, and labels that would orphan a
    following I-T are avoided). The candidate sets depend only on the
    neighbours — which the move does not change — so forward and reverse
    candidate sets have equal size and the proposal stays symmetric. *)

val segment_flip : ?max_len:int -> Crf.t -> Core.World.t Mcmc.Proposal.t
(** Block move: pick a random in-document span of length ≤ [max_len]
    (default 3) and relabel it wholesale to one of five patterns — all-O, or
    B-T (I-T)* for each entity type. The move is its own reverse when the
    span currently holds a pattern (symmetric, ratio 1); otherwise the
    reverse has probability 0 and the move is rejected outright, which keeps
    the kernel exactly reversible. Mix with a single-flip proposal for
    ergodicity. *)

val query_targeted :
  Crf.t -> Relational.Algebra.t -> Core.World.t Mcmc.Proposal.t
(** §4.1's "inject query-specific knowledge into the proposal
    distribution", derived automatically from the query structure: flips
    are restricted to documents that can influence the answer. This is
    *exact*, not approximate, because the skip-chain CRF factorizes over
    documents — labels elsewhere are independent of the answer, so sampling
    the restricted component's conditional equals sampling its marginal.

    Relevance analysis: every equality between the STRING column and a text
    constant anywhere in the query marks the documents containing that
    constant as relevant (unioned, which is conservative); a query without
    such constants keeps every document. *)
