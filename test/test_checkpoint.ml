(* Tests for the durability layer (lib/checkpoint + Serve durability):
   the codec round-trips and detects corruption; snapshot -> restore ->
   snapshot is byte-identical for random worlds and views; a chain killed
   at an exact sample index by the failpoint and resumed from its last
   checkpoint produces bit-identical marginals to an uninterrupted run,
   with zero bootstrap evaluations paid on restore. *)

open Relational
open Core
open Checkpoint

let r vs = Row.make vs

(* ------------------------------------------------------------------ *)
(* Codec primitives and framing *)

let test_codec_roundtrip () =
  let b = Codec.W.create () in
  Codec.W.u8 b 0xAB;
  List.iter (Codec.W.uvarint b) [ 0; 1; 127; 128; 300; 1 lsl 40 ];
  List.iter (Codec.W.varint b) [ 0; -1; 1; -64; 64; min_int + 1; max_int ];
  List.iter (Codec.W.float b) [ 0.; -0.; 1.5; infinity; neg_infinity; nan; 1e-300 ];
  Codec.W.string b "";
  Codec.W.string b "hello \x00 world";
  Codec.W.bool b true;
  Codec.W.option b Codec.W.string None;
  Codec.W.option b Codec.W.string (Some "x");
  Codec.W.list b Codec.W.uvarint [ 3; 1; 4; 1; 5 ];
  let r = Codec.R.of_string (Codec.W.contents b) in
  Alcotest.(check int) "u8" 0xAB (Codec.R.u8 r);
  List.iter
    (fun n -> Alcotest.(check int) "uvarint" n (Codec.R.uvarint r))
    [ 0; 1; 127; 128; 300; 1 lsl 40 ];
  List.iter
    (fun n -> Alcotest.(check int) "varint" n (Codec.R.varint r))
    [ 0; -1; 1; -64; 64; min_int + 1; max_int ];
  List.iter
    (fun x ->
      let y = Codec.R.float r in
      Alcotest.(check int64) "float bits" (Int64.bits_of_float x) (Int64.bits_of_float y))
    [ 0.; -0.; 1.5; infinity; neg_infinity; nan; 1e-300 ];
  Alcotest.(check string) "empty string" "" (Codec.R.string r);
  Alcotest.(check string) "string" "hello \x00 world" (Codec.R.string r);
  Alcotest.(check bool) "bool" true (Codec.R.bool r);
  Alcotest.(check (option string)) "none" None (Codec.R.option r Codec.R.string);
  Alcotest.(check (option string)) "some" (Some "x") (Codec.R.option r Codec.R.string);
  Alcotest.(check (list int)) "list" [ 3; 1; 4; 1; 5 ] (Codec.R.list r Codec.R.uvarint);
  Alcotest.(check bool) "exhausted" true (Codec.R.at_end r)

let test_frame_detects_corruption () =
  let payload = "some checkpoint payload bytes" in
  let framed = Codec.frame ~version:1 payload in
  Alcotest.(check string) "frame round-trip" payload
    (Codec.unframe ~expect_version:1 framed);
  (* Flipping any byte must trip the CRC (or the magic/length checks). *)
  for i = 0 to String.length framed - 1 do
    let broken = Bytes.of_string framed in
    Bytes.set broken i (Char.chr (Char.code (Bytes.get broken i) lxor 0x40));
    match Codec.unframe ~expect_version:1 (Bytes.to_string broken) with
    | _ -> Alcotest.failf "corruption at byte %d went undetected" i
    | exception Codec.Corrupt _ -> ()
  done;
  (match Codec.unframe ~expect_version:2 framed with
  | _ -> Alcotest.fail "version mismatch accepted"
  | exception Codec.Corrupt _ -> ());
  match Codec.unframe ~expect_version:1 (String.sub framed 0 10) with
  | _ -> Alcotest.fail "truncation accepted"
  | exception Codec.Corrupt _ -> ()

let test_atomic_write () =
  let path = Filename.temp_file "ckpt_test" ".bin" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let n = Codec.write_file ~path "first" in
  Alcotest.(check int) "bytes written" 5 n;
  ignore (Codec.write_file ~path "second" : int);
  Alcotest.(check string) "replaced atomically" "second" (Codec.read_file ~path);
  Alcotest.(check bool) "no temp file left" false (Sys.file_exists (path ^ ".tmp"))

(* ------------------------------------------------------------------ *)
(* The color-model world of test_serve, with a seeded random initial
   coloring so qcheck explores genuinely different worlds. *)

let color_domain = Factorgraph.Domain.make [ "red"; "blue" ]
let color_field i = Field.make ~table:"ITEM" ~key:(Value.Int i) ~column:"color"

let small_db ~n_items ~coloring () =
  let db = Database.create () in
  let schema =
    Schema.make
      [ { Schema.name = "id"; ty = Value.T_int };
        { Schema.name = "color"; ty = Value.T_text } ]
  in
  let t = Database.create_table db ~pk:"id" ~name:"ITEM" schema in
  for i = 0 to n_items - 1 do
    let color = if (coloring lsr i) land 1 = 0 then "red" else "blue" in
    Table.insert t (r [ Value.Int i; Value.Text color ])
  done;
  db

(* Build the chain over an existing ITEM database — the restore-side
   constructor as well as the fresh-start one. *)
let pdb_over_db ~n_items ~seed db =
  let world = World.create db in
  let gp = Graph_pdb.create world in
  let vars =
    Array.init n_items (fun i -> Graph_pdb.bind gp (color_field i) color_domain)
  in
  let g = Graph_pdb.graph gp in
  Array.iter
    (fun v -> ignore (Factorgraph.Graph.add_table_factor g ~scope:[| v |] [| 0.; 0.7 |]))
    vars;
  for i = 0 to n_items - 2 do
    ignore
      (Factorgraph.Graph.add_table_factor g ~scope:[| vars.(i); vars.(i + 1) |]
         [| 1.0; 0.; 0.; 1.0 |])
  done;
  Pdb.create ~world ~proposal:(Graph_pdb.flip_proposal gp) ~rng:(Mcmc.Rng.create seed)

let build_pdb ?(n_items = 4) ?(coloring = 0) ~seed () =
  pdb_over_db ~n_items ~seed (small_db ~n_items ~coloring ())

let test_queries =
  [ "SELECT id FROM ITEM WHERE color='blue'";
    "SELECT color, COUNT(*) AS n FROM ITEM GROUP BY color";
    "SELECT T1.id FROM ITEM T1, ITEM T2 WHERE T1.color=T2.color AND T1.id=0" ]

let make_registry ?(n_items = 4) ?(coloring = 0) ~seed () =
  let reg = Serve.Registry.create (build_pdb ~n_items ~coloring ~seed ()) in
  List.iter
    (fun sql -> ignore (Serve.Registry.register_sql reg sql : Serve.Registry.query_id))
    test_queries;
  reg

(* ------------------------------------------------------------------ *)
(* Snapshot round-trips *)

(* qcheck: for random worlds (size, coloring, seed, samples walked), the
   snapshot of a restored registry is byte-identical to the snapshot it
   was restored from — the canonical-encoding contract that makes the CRC
   and the resume-determinism guarantees meaningful. *)
let prop_snapshot_roundtrip_byte_identical =
  QCheck.Test.make ~name:"checkpoint: snapshot/restore/snapshot byte-identical"
    ~count:40
    QCheck.(
      quad (int_range 2 6) (int_range 0 63) (int_range 0 10_000) (int_range 0 25))
    (fun (n_items, coloring, seed, samples) ->
      let reg = make_registry ~n_items ~coloring ~seed () in
      Serve.Registry.run reg ~thin:3 ~samples;
      let snap = Serve.Registry.snapshot reg in
      let bytes = Checkpoint.State.encode snap in
      let reg' =
        Serve.Registry.restore
          ~make_pdb:(fun db -> pdb_over_db ~n_items ~seed db)
          (Checkpoint.State.decode bytes)
      in
      let bytes' = Checkpoint.State.encode (Serve.Registry.snapshot reg') in
      String.equal bytes bytes')

let estimates_exactly_equal msg a b =
  let ea = Marginals.estimates a and eb = Marginals.estimates b in
  Alcotest.(check int) (msg ^ ": same support") (List.length ea) (List.length eb);
  List.iter2
    (fun (ra, pa) (rb, pb) ->
      if not (Row.equal ra rb) || pa <> pb then
        Alcotest.failf "%s: estimates differ at %s (%.17g vs %.17g)" msg
          (Row.to_string ra) pa pb)
    ea eb;
  Alcotest.(check int) (msg ^ ": same z") (Marginals.samples a) (Marginals.samples b)

(* A restored registry must continue the chain exactly: walk both the
   original and its restored clone and compare every query's estimates. *)
let test_restore_continues_stream () =
  let reg = make_registry ~seed:91 () in
  Serve.Registry.run reg ~thin:5 ~samples:20;
  let reg' =
    Serve.Registry.restore
      ~make_pdb:(fun db -> pdb_over_db ~n_items:4 ~seed:91 db)
      (Checkpoint.State.decode (Checkpoint.State.encode (Serve.Registry.snapshot reg)))
  in
  Alcotest.(check int) "samples restored" 20 (Serve.Registry.samples reg');
  Alcotest.(check int) "steps restored" (Pdb.steps_taken (Serve.Registry.pdb reg))
    (Pdb.steps_taken (Serve.Registry.pdb reg'));
  Serve.Registry.run reg ~thin:5 ~samples:15;
  Serve.Registry.run reg' ~thin:5 ~samples:15;
  List.iter2
    (fun sql (id, id') ->
      estimates_exactly_equal sql
        (Serve.Registry.marginals reg id)
        (Serve.Registry.marginals reg' id'))
    test_queries
    (List.combine
       (List.map fst (Serve.Registry.queries reg))
       (List.map fst (Serve.Registry.queries reg')))

let test_snapshot_file_corruption_detected () =
  let reg = make_registry ~seed:17 () in
  Serve.Registry.run reg ~thin:3 ~samples:5;
  let path = Filename.temp_file "ckpt_test" ".ckpt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  ignore (Checkpoint.State.save ~path (Serve.Registry.snapshot reg) : int);
  ignore (Checkpoint.State.load ~path : Checkpoint.State.t);
  let data = Codec.read_file ~path in
  let broken = Bytes.of_string data in
  let mid = Bytes.length broken / 2 in
  Bytes.set broken mid (Char.chr (Char.code (Bytes.get broken mid) lxor 0x01));
  ignore (Codec.write_file ~path (Bytes.to_string broken) : int);
  match Checkpoint.State.load ~path with
  | _ -> Alcotest.fail "bit flip in snapshot file went undetected"
  | exception Codec.Corrupt _ -> ()

let test_restore_db_shape () =
  let db = small_db ~n_items:4 ~coloring:0b0101 () in
  Table.create_index (Database.table db "ITEM") "color";
  let db' = Checkpoint.State.restore_db (Checkpoint.State.capture_tables db) in
  let t' = Database.table db' "ITEM" in
  Alcotest.(check (option string)) "pk restored" (Some "id") (Table.pk_column t');
  Alcotest.(check bool) "index restored" true (Table.has_index t' "color");
  Alcotest.(check bool) "rows restored" true
    (Bag.equal (Table.rows (Database.table db "ITEM")) (Table.rows t'));
  Alcotest.(check bool) "pk lookup works" true
    (Table.find_by_pk t' (Value.Int 2) <> None)

(* ------------------------------------------------------------------ *)
(* Failpoint *)

let test_failpoint_one_shot () =
  Failpoint.disarm ();
  Failpoint.hit "x" ~index:3;
  Failpoint.arm ~name:"x" ~at:3 ();
  Alcotest.(check (option (pair string int))) "armed" (Some ("x", 3)) (Failpoint.armed ());
  Failpoint.hit "x" ~index:2;
  Failpoint.hit "y" ~index:3;
  (match Failpoint.hit "x" ~index:3 with
  | () -> Alcotest.fail "armed failpoint did not fire"
  | exception Failpoint.Injected { name; index } ->
    Alcotest.(check string) "name" "x" name;
    Alcotest.(check int) "index" 3 index);
  (* One-shot: the same index passes on the next visit, so a resumed chain
     does not re-crash forever. *)
  Failpoint.hit "x" ~index:3;
  Alcotest.(check (option (pair string int))) "disarmed after firing" None
    (Failpoint.armed ())

let test_failpoint_env () =
  Failpoint.disarm ();
  Unix.putenv "PDB_FAILPOINT" "pool.sample@25";
  Fun.protect ~finally:(fun () -> Unix.putenv "PDB_FAILPOINT" "")
  @@ fun () ->
  Failpoint.arm_from_env ();
  Alcotest.(check (option (pair string int))) "parsed" (Some ("pool.sample", 25))
    (Failpoint.armed ());
  Failpoint.disarm ();
  Unix.putenv "PDB_FAILPOINT" "pool.sample@7x3";
  Failpoint.arm_from_env ();
  Alcotest.(check (option (pair string int))) "parsed with times" (Some ("pool.sample", 7))
    (Failpoint.armed ());
  (match Failpoint.hit "pool.sample" ~index:7 with
  | () -> Alcotest.fail "should fire (1/3)"
  | exception Failpoint.Injected _ -> ());
  (match Failpoint.hit "pool.sample" ~index:7 with
  | () -> Alcotest.fail "should fire (2/3)"
  | exception Failpoint.Injected _ -> ());
  (match Failpoint.hit "pool.sample" ~index:7 with
  | () -> Alcotest.fail "should fire (3/3)"
  | exception Failpoint.Injected _ -> ());
  Failpoint.hit "pool.sample" ~index:7;
  Unix.putenv "PDB_FAILPOINT" "garbage";
  match Failpoint.arm_from_env () with
  | () -> Alcotest.fail "malformed spec accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Supervised kill-and-resume through the pool *)

let counter_value name =
  match Obs.Metrics.find Obs.Metrics.global name with
  | Some (Obs.Metrics.Counter n) -> n
  | _ -> 0

let fresh_ckpt_dir () =
  let path = Filename.temp_file "ckpt_dir" "" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  path

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

(* Kill the chain at sample 8 (after the sample-5 checkpoint), let the
   supervisor retry, and demand the final marginals be bit-identical to an
   uninterrupted run — with the restore paying zero bootstrap
   evaluations. *)
let test_kill_and_resume_bit_identical () =
  Obs.Metrics.set_enabled true;
  let dir = fresh_ckpt_dir () in
  Fun.protect ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Failpoint.disarm ();
      rm_rf dir)
  @@ fun () ->
  let queries = List.map (fun sql -> (sql, Sql.parse sql)) test_queries in
  let make ~chain = build_pdb ~seed:(700 + chain) () in
  let durability =
    {
      Serve.Pool.dir;
      every = 5;
      resume = false;
      retries = 2;
      backoff_s = 0.;
      remake = (fun ~chain db -> pdb_over_db ~n_items:4 ~seed:(700 + chain) db);
      wal = None;
    }
  in
  let reference =
    Serve.Pool.evaluate ~chains:1 ~make ~queries ~thin:4 ~samples:14 ()
  in
  let bootstraps0 = counter_value "serve.bootstrap_evals" in
  let restores0 = counter_value "checkpoint.restore.count" in
  let retries0 = counter_value "checkpoint.retry.count" in
  Failpoint.arm ~name:"pool.sample" ~at:8 ();
  let survived =
    Serve.Pool.evaluate ~chains:1 ~durability ~make ~queries ~thin:4 ~samples:14 ()
  in
  Alcotest.(check int) "one supervised retry" (retries0 + 1)
    (counter_value "checkpoint.retry.count");
  Alcotest.(check int) "one restore" (restores0 + 1)
    (counter_value "checkpoint.restore.count");
  (* Registration bootstraps once per query on the fresh start; the restore
     after the crash must not evaluate anything. *)
  Alcotest.(check int) "zero bootstrap evals on restore"
    (bootstraps0 + List.length queries)
    (counter_value "serve.bootstrap_evals");
  List.iter2
    (fun (sql, _) (sql', m') ->
      Alcotest.(check string) "query order" sql sql';
      estimates_exactly_equal sql (List.assoc sql reference) m')
    queries survived

(* A crash with no checkpoint on disk yet falls back to a clean fresh
   start — still bit-identical, because nothing of the dead attempt
   survives. *)
let test_kill_before_first_checkpoint () =
  Obs.Metrics.set_enabled true;
  let dir = fresh_ckpt_dir () in
  Fun.protect ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Failpoint.disarm ();
      rm_rf dir)
  @@ fun () ->
  let queries = [ (List.hd test_queries, Sql.parse (List.hd test_queries)) ] in
  let make ~chain = build_pdb ~seed:(800 + chain) () in
  let durability =
    {
      Serve.Pool.dir;
      every = 50;
      resume = false;
      retries = 1;
      backoff_s = 0.;
      remake = (fun ~chain db -> pdb_over_db ~n_items:4 ~seed:(800 + chain) db);
      wal = None;
    }
  in
  let reference = Serve.Pool.evaluate ~chains:1 ~make ~queries ~thin:3 ~samples:10 () in
  let restores0 = counter_value "checkpoint.restore.count" in
  Failpoint.arm ~name:"pool.sample" ~at:4 ();
  let survived =
    Serve.Pool.evaluate ~chains:1 ~durability ~make ~queries ~thin:3 ~samples:10 ()
  in
  Alcotest.(check int) "no checkpoint to restore" restores0
    (counter_value "checkpoint.restore.count");
  estimates_exactly_equal "fresh-start retry" (snd (List.hd reference))
    (snd (List.hd survived))

(* --resume semantics: a second process picks up the completed run's final
   checkpoint and, asked for the same sample budget, returns immediately
   with the identical answer. *)
let test_resume_from_previous_process () =
  let dir = fresh_ckpt_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let queries = List.map (fun sql -> (sql, Sql.parse sql)) test_queries in
  let make ~chain = build_pdb ~seed:(900 + chain) () in
  let durability =
    {
      Serve.Pool.dir;
      every = 4;
      resume = false;
      retries = 0;
      backoff_s = 0.;
      remake = (fun ~chain db -> pdb_over_db ~n_items:4 ~seed:(900 + chain) db);
      wal = None;
    }
  in
  let first =
    Serve.Pool.evaluate ~chains:1 ~durability ~make ~queries ~thin:3 ~samples:12 ()
  in
  (* Same dir, resume on: restores at sample 12 and has nothing left to do.
     [make] would crash the test if called — resume must not rebuild. *)
  let durability = { durability with resume = true } in
  let poisoned_make ~chain:_ = Alcotest.fail "resume must not rebuild the chain" in
  let second =
    Serve.Pool.evaluate ~chains:1 ~durability ~make:poisoned_make ~queries ~thin:3
      ~samples:12 ()
  in
  List.iter2
    (fun (sql, m) (_, m') -> estimates_exactly_equal sql m m')
    first second

(* The retry budget is bounded: a poison chain (fails deterministically
   every attempt at an index past the checkpoint... i.e. re-armed each
   retry) surfaces as Job_failed with the attempt count. *)
let test_poison_chain_exhausts_retries () =
  let dir = fresh_ckpt_dir () in
  Fun.protect ~finally:(fun () ->
      Failpoint.disarm ();
      rm_rf dir)
  @@ fun () ->
  let queries = [ (List.hd test_queries, Sql.parse (List.hd test_queries)) ] in
  let make ~chain = build_pdb ~seed:(950 + chain) () in
  let durability =
    {
      Serve.Pool.dir;
      every = 2;
      resume = false;
      retries = 2;
      backoff_s = 0.;
      remake = (fun ~chain db -> pdb_over_db ~n_items:4 ~seed:(950 + chain) db);
      wal = None;
    }
  in
  (* times = attempts + 1 > retry budget: every attempt dies at sample 5. *)
  Failpoint.arm ~times:3 ~name:"pool.sample" ~at:5 ();
  match
    Serve.Pool.evaluate ~chains:1 ~durability ~make ~queries ~thin:3 ~samples:8 ()
  with
  | _ -> Alcotest.fail "poison chain must exhaust its retry budget"
  | exception Mcmc.Parallel.Job_failed { index; attempts; exn } ->
    Alcotest.(check int) "chain index" 0 index;
    Alcotest.(check int) "attempts" 3 attempts;
    (match exn with
    | Failpoint.Injected { index = 5; _ } -> ()
    | e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* WAL: record codec, torn-tail recovery, delta-log durability *)

let join_sql = List.nth test_queries 2

(* qcheck: WAL records survive encode → decode → encode byte-identically,
   for random deltas over every value shape the grammar carries. *)
let gen_value =
  QCheck.Gen.(
    oneof
      [ return Value.Null;
        map (fun n -> Value.Int n) small_signed_int;
        map (fun f -> Value.Float f) (float_range (-1e6) 1e6);
        map (fun b -> Value.Bool b) bool;
        map (fun s -> Value.Text s) (string_size (int_bound 8)) ])

let gen_row = QCheck.Gen.(map Row.make (list_size (int_bound 4) gen_value))

let gen_entry =
  QCheck.Gen.(
    map2 (fun row c -> (row, if c >= 0 then c + 1 else c)) gen_row (int_range (-4) 3))

let gen_delta =
  QCheck.Gen.(
    list_size (int_bound 3)
      (map2 (fun t entries -> (t, entries))
         (oneofl [ "ITEM"; "TOKEN"; "LABEL" ])
         (list_size (int_bound 4) gen_entry)))

let gen_wal_record =
  QCheck.Gen.(
    frequency
      [ (4,
         map2
           (fun (steps, proposed, accepted) (rng, delta) ->
             Wal.Sample { steps; proposed; accepted; rng; delta })
           (triple (int_bound 10_000) (int_bound 10_000) (int_bound 10_000))
           (pair (string_size (int_bound 64)) gen_delta));
        (1,
         map2
           (fun id name -> Wal.Register { id; name; algebra = Sql.parse join_sql })
           (int_bound 100) (string_size (int_bound 16)));
        (1, map (fun id -> Wal.Unregister { id }) (int_bound 100));
        (1, map (fun delta -> Wal.Absorb { delta }) gen_delta) ])

let prop_wal_record_roundtrip =
  QCheck.Test.make ~name:"wal: record encode/decode/encode byte-identical" ~count:200
    (QCheck.make gen_wal_record)
    (fun record ->
      let payload = Wal.encode_record record in
      String.equal payload (Wal.encode_record (Wal.decode_record payload)))

let sample_records =
  [ Wal.Sample
      {
        steps = 40;
        proposed = 40;
        accepted = 11;
        rng = "rng-blob-one";
        delta =
          [ ("ITEM",
             [ (r [ Value.Int 0; Value.Text "blue" ], 1);
               (r [ Value.Int 0; Value.Text "red" ], -1) ]) ];
      };
    Wal.Register { id = 3; name = "late"; algebra = Sql.parse join_sql };
    Wal.Absorb { delta = [ ("ITEM", [ (r [ Value.Int 2; Value.Text "red" ], 1) ]) ] };
    Wal.Unregister { id = 3 };
    Wal.Sample { steps = 44; proposed = 44; accepted = 12; rng = "rng-blob-two"; delta = [] } ]

(* The file is exactly header ∥ frames, and truncating the log at *every*
   byte offset of the final frame recovers cleanly to the last whole
   record — the torn-tail guarantee. *)
let test_wal_torn_tail_recovery () =
  let path = Filename.temp_file "wal_test" ".wal" in
  Fun.protect ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ path; path ^ ".tmp" ])
  @@ fun () ->
  let w = Wal.create ~path ~base_samples:7 ~fsync_every:1 in
  List.iter (Wal.append w) sample_records;
  Alcotest.(check int) "appended" 5 (Wal.appended w);
  Wal.close w;
  let full = Codec.read_file ~path in
  let header = Wal.header ~base_samples:7 in
  let frames = List.map Wal.encode_frame sample_records in
  Alcotest.(check string) "file = header ∥ frames" (header ^ String.concat "" frames) full;
  Alcotest.(check int) "writer byte accounting" (String.length full) (Wal.bytes w);
  let rec_ = Wal.recover ~path in
  Alcotest.(check int) "base_samples" 7 rec_.Wal.base_samples;
  Alcotest.(check bool) "not torn" false rec_.Wal.torn;
  Alcotest.(check int) "valid to EOF" (String.length full) rec_.Wal.valid_bytes;
  Alcotest.(check (list string)) "all records recovered"
    (List.map Wal.encode_record sample_records)
    (List.map Wal.encode_record rec_.Wal.records);
  let last_start = String.length full - String.length (List.nth frames 4) in
  (* Ending exactly on the frame boundary is a clean file, not a torn one. *)
  ignore (Codec.write_file ~path (String.sub full 0 last_start) : int);
  let rec_ = Wal.recover ~path in
  Alcotest.(check bool) "boundary cut is clean" false rec_.Wal.torn;
  Alcotest.(check int) "boundary valid_bytes" last_start rec_.Wal.valid_bytes;
  for cut = last_start + 1 to String.length full - 1 do
    ignore (Codec.write_file ~path (String.sub full 0 cut) : int);
    let rec_ = Wal.recover ~path in
    Alcotest.(check bool) (Printf.sprintf "torn at %d" cut) true rec_.Wal.torn;
    Alcotest.(check int) (Printf.sprintf "valid_bytes at %d" cut) last_start
      rec_.Wal.valid_bytes;
    Alcotest.(check (list string)) (Printf.sprintf "records at %d" cut)
      (List.map Wal.encode_record (List.filteri (fun i _ -> i < 4) sample_records))
      (List.map Wal.encode_record rec_.Wal.records)
  done;
  (* Reopening for append truncates the torn tail; the next append starts
     at the last whole record. *)
  ignore (Codec.write_file ~path (String.sub full 0 (String.length full - 2)) : int);
  let rec_ = Wal.recover ~path in
  let w2 = Wal.open_append ~path ~valid_bytes:rec_.Wal.valid_bytes ~fsync_every:0 in
  Wal.append w2 (Wal.Unregister { id = 9 });
  Wal.close w2;
  let rec2 = Wal.recover ~path in
  Alcotest.(check bool) "clean after reopen" false rec2.Wal.torn;
  Alcotest.(check (list string)) "tail replaced by new record"
    (List.map Wal.encode_record
       (List.filteri (fun i _ -> i < 4) sample_records @ [ Wal.Unregister { id = 9 } ]))
    (List.map Wal.encode_record rec2.Wal.records)

(* Flipping any byte of a record's frame makes recovery stop before it —
   torn, not silently wrong — and header damage raises Corrupt. *)
let test_wal_corruption_detected () =
  let path = Filename.temp_file "wal_test" ".wal" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let w = Wal.create ~path ~base_samples:0 ~fsync_every:0 in
  List.iter (Wal.append w) sample_records;
  Wal.close w;
  let full = Codec.read_file ~path in
  let header_len = String.length (Wal.header ~base_samples:0) in
  let first_frame_len = String.length (Wal.encode_frame (List.hd sample_records)) in
  for i = header_len to header_len + first_frame_len - 1 do
    let broken = Bytes.of_string full in
    Bytes.set broken i (Char.chr (Char.code (Bytes.get broken i) lxor 0x20));
    ignore (Codec.write_file ~path (Bytes.to_string broken) : int);
    match Wal.recover ~path with
    | rec_ ->
      if not (Int.equal (List.length rec_.Wal.records) 0) then
        Alcotest.failf "flip at byte %d: corrupted first frame yielded records" i
    | exception Codec.Corrupt _ ->
      (* A length-byte flip can masquerade as a CRC-valid-but-undecodable
         frame only by colliding CRC-32, which a single bit flip cannot;
         Corrupt here would mean the scan misclassified a torn tail. *)
      Alcotest.failf "flip at byte %d inside a frame must read as torn, not Corrupt" i
  done;
  for i = 0 to header_len - 1 do
    let broken = Bytes.of_string full in
    Bytes.set broken i (Char.chr (Char.code (Bytes.get broken i) lxor 0x20));
    ignore (Codec.write_file ~path (Bytes.to_string broken) : int);
    match Wal.recover ~path with
    | _ -> Alcotest.failf "header flip at byte %d went undetected" i
    | exception Codec.Corrupt _ -> ()
  done

let wal_pool_durability ~dir ?(fsync_every = 1) ?(compact_ratio = 1e9) ~seed () =
  {
    Serve.Pool.dir;
    every = 0;
    resume = false;
    retries = 2;
    backoff_s = 0.;
    remake = (fun ~chain db -> pdb_over_db ~n_items:4 ~seed:(seed + chain) db);
    wal = Some { Serve.Pool.fsync_every; compact_ratio };
  }

(* One supervised WAL run against its uninterrupted reference: kill the
   chain at a failpoint, let the supervisor restore it, and demand
   bit-identical marginals. Returns the replayed-record, bootstrap-eval,
   and snapshot-restore counter deltas of the killed run (baselines taken
   after the reference run, which pays its own bootstraps). *)
let check_wal_run ~seed ~durability ~arm () =
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Failpoint.disarm ())
  @@ fun () ->
  let queries = List.map (fun sql -> (sql, Sql.parse sql)) test_queries in
  let make ~chain = build_pdb ~seed:(seed + chain) () in
  let reference = Serve.Pool.evaluate ~chains:1 ~make ~queries ~thin:4 ~samples:14 () in
  let replays0 = counter_value "wal.replay_records" in
  let bootstraps0 = counter_value "serve.bootstrap_evals" in
  let restores0 = counter_value "checkpoint.restore.count" in
  arm ();
  let survived =
    Serve.Pool.evaluate ~chains:1 ~durability ~make ~queries ~thin:4 ~samples:14 ()
  in
  List.iter2
    (fun (sql, _) (sql', m') ->
      Alcotest.(check string) "query order" sql sql';
      estimates_exactly_equal sql (List.assoc sql reference) m')
    queries survived;
  ( counter_value "wal.replay_records" - replays0,
    counter_value "serve.bootstrap_evals" - bootstraps0,
    counter_value "checkpoint.restore.count" - restores0 )

(* Kill at sample 8: the retry must replay samples 1–7 from the log (the
   snapshot only covers sample 0) and pay zero bootstrap evaluations
   beyond the fresh start's. *)
let test_wal_kill_and_resume () =
  let dir = fresh_ckpt_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let replayed, bootstraps, restores =
    check_wal_run ~seed:760
      ~durability:(wal_pool_durability ~dir ~seed:760 ())
      ~arm:(fun () -> Failpoint.arm ~name:"pool.sample" ~at:8 ())
      ()
  in
  Alcotest.(check int) "replayed the logged samples" 7 replayed;
  Alcotest.(check int) "one snapshot restore" 1 restores;
  Alcotest.(check int) "zero bootstrap evals on restore"
    (List.length test_queries) bootstraps

(* Crash between compaction's snapshot write and... before it ("wal.compact"),
   and between the write and the log rotation ("wal.rotate") — both leave a
   recoverable snapshot/log pair. compact_ratio 0.01 forces a rotation on
   every sample so the failpoints sit in the live path. *)
let test_wal_crash_mid_compaction () =
  let dir = fresh_ckpt_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  ignore
    (check_wal_run ~seed:770
       ~durability:(wal_pool_durability ~dir ~compact_ratio:0.01 ~seed:770 ())
       ~arm:(fun () -> Failpoint.arm ~name:"wal.compact" ~at:3 ())
       ()
      : int * int * int)

let test_wal_crash_mid_rotation () =
  let dir = fresh_ckpt_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let replayed, _, restores =
    check_wal_run ~seed:780
      ~durability:(wal_pool_durability ~dir ~compact_ratio:0.01 ~seed:780 ())
      ~arm:(fun () -> Failpoint.arm ~name:"wal.rotate" ~at:2 ())
      ()
  in
  (* The crash hit after the sample-1 snapshot was saved but before the
     log rotated: the log's only record is already inside the snapshot
     and must be skipped, not re-applied. *)
  Alcotest.(check int) "snapshot already covers the log" 0 replayed;
  Alcotest.(check int) "one snapshot restore" 1 restores

(* Crash mid-append: half a frame lands on disk, durably. Recovery must
   truncate it and resume from the last whole record. *)
let test_wal_crash_torn_append () =
  let dir = fresh_ckpt_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let replayed, _, _ =
    check_wal_run ~seed:790
      ~durability:(wal_pool_durability ~dir ~seed:790 ())
      ~arm:(fun () -> Failpoint.arm ~name:"wal.torn_append" ~at:5 ())
      ()
  in
  (* The 5th record died mid-write: samples 1–4 replay from the log. *)
  Alcotest.(check int) "replayed up to the torn frame" 4 replayed

(* --resume over WAL state: a completed run's directory resumes with
   nothing to replay and returns the identical answer without rebuilding. *)
let test_wal_resume_previous_process () =
  let dir = fresh_ckpt_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let queries = List.map (fun sql -> (sql, Sql.parse sql)) test_queries in
  let make ~chain = build_pdb ~seed:(810 + chain) () in
  let durability = wal_pool_durability ~dir ~seed:810 () in
  let first =
    Serve.Pool.evaluate ~chains:1 ~durability ~make ~queries ~thin:3 ~samples:12 ()
  in
  let durability = { durability with resume = true } in
  let poisoned_make ~chain:_ = Alcotest.fail "resume must not rebuild the chain" in
  let second =
    Serve.Pool.evaluate ~chains:1 ~durability ~make:poisoned_make ~queries ~thin:3
      ~samples:12 ()
  in
  List.iter2 (fun (sql, m) (_, m') -> estimates_exactly_equal sql m m') first second

(* Mid-run register/unregister flow through the log as events: a crashed
   chain replays them (paying the late query's bootstrap again) and lands
   bit-identical to an uninterrupted twin. *)
let test_wal_register_replay () =
  let dir = fresh_ckpt_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let seed = 4242 in
  let first_sql = List.hd test_queries in
  let steps reg n = for _ = 1 to n do Serve.Registry.step reg ~thin:3 done in
  (* Uninterrupted twin. *)
  let reg_a = Serve.Registry.create (build_pdb ~seed ()) in
  let a0 = Serve.Registry.register_sql reg_a first_sql in
  steps reg_a 4;
  let a1 = Serve.Registry.register_sql reg_a join_sql in
  steps reg_a 4;
  ignore (Serve.Registry.unregister reg_a a0 : Marginals.t);
  steps reg_a 4;
  (* Durable chain, crashed two samples after the unregister. *)
  let snap_path = Filename.concat dir "chain.ckpt" in
  let wal_path = Filename.concat dir "chain.wal" in
  let policy = { Serve.Durable.fsync_every = 1; compact_ratio = 1e9 } in
  let reg_b = Serve.Registry.create (build_pdb ~seed ()) in
  let b0 = Serve.Registry.register_sql reg_b first_sql in
  let dur = Serve.Durable.start ~snap_path ~wal_path policy reg_b in
  let dstep reg n =
    for _ = 1 to n do
      Serve.Registry.step reg ~thin:3;
      Serve.Durable.after_sample dur
    done
  in
  dstep reg_b 4;
  ignore (Serve.Registry.register_sql reg_b join_sql : Serve.Registry.query_id);
  dstep reg_b 4;
  ignore (Serve.Registry.unregister reg_b b0 : Marginals.t);
  dstep reg_b 2;
  (* Crash: drop [dur] without closing — every record is on disk
     (fsync_every = 1), the writer's open descriptor simply dies. *)
  let dur2 =
    Serve.Durable.resume ~snap_path ~wal_path policy
      ~make_pdb:(fun db -> pdb_over_db ~n_items:4 ~seed db)
  in
  let reg_b' = Serve.Durable.registry dur2 in
  Alcotest.(check int) "samples replayed" 10 (Serve.Registry.samples reg_b');
  Alcotest.(check int) "one live query" 1 (Serve.Registry.query_count reg_b');
  for _ = 1 to 2 do
    Serve.Registry.step reg_b' ~thin:3;
    Serve.Durable.after_sample dur2
  done;
  Serve.Durable.close dur2;
  let b1 = fst (List.hd (Serve.Registry.queries reg_b')) in
  estimates_exactly_equal "late-registered query"
    (Serve.Registry.marginals reg_a a1)
    (Serve.Registry.marginals reg_b' b1)

(* The point of the log: per-sample durable bytes are small against the
   snapshot the old path rewrote every period (the paper's |Δ| ≪ |D|,
   applied to disk). The paper-scale version of this assertion lives in
   the wal bench + tools/bench_gate.sh floors. *)
let test_wal_write_amplification () =
  let dir = fresh_ckpt_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let reg = make_registry ~seed:888 () in
  let policy = { Serve.Durable.fsync_every = 5; compact_ratio = 1e9 } in
  let dur =
    Serve.Durable.start ~snap_path:(Filename.concat dir "c.ckpt")
      ~wal_path:(Filename.concat dir "c.wal") policy reg
  in
  let samples = 30 in
  for _ = 1 to samples do
    Serve.Registry.step reg ~thin:3;
    Serve.Durable.after_sample dur
  done;
  let header_len = String.length (Wal.header ~base_samples:0) in
  let per_sample = (Serve.Durable.wal_bytes dur - header_len) / samples in
  let snap = Serve.Durable.snapshot_bytes dur in
  Serve.Durable.close dur;
  if per_sample <= 0 || per_sample >= snap then
    Alcotest.failf "WAL bytes/sample %d not small against snapshot bytes %d" per_sample
      snap

(* docs/DURABILITY.md is normative: parse its layout tables and check
   magic, version, and the record-kind table against the implementation,
   then check the header/frame layout prose against the encoders' actual
   bytes. This is what keeps the spec and the codec from drifting apart
   silently — the doc is a build dependency of this test (test/dune). *)
let read_durability_doc () =
  let candidates = [ "../docs/DURABILITY.md"; "docs/DURABILITY.md" ] in
  match List.find_opt Sys.file_exists candidates with
  | None -> Alcotest.fail "docs/DURABILITY.md not found (declared in test/dune deps)"
  | Some path ->
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))

(* Markdown table rows as trimmed cell lists, outer pipes dropped. *)
let doc_table_rows doc =
  String.split_on_char '\n' doc
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if String.length line >= 2 && line.[0] = '|' then
           Some
             (String.split_on_char '|' line
             |> List.map String.trim
             |> List.filter (fun c -> String.length c > 0))
         else None)

let backtick_content s =
  match String.index_opt s '`' with
  | None -> None
  | Some i -> (
      match String.index_from_opt s (i + 1) '`' with
      | None -> None
      | Some j -> Some (String.sub s (i + 1) (j - i - 1)))

let crc_le s =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Codec.crc32 s);
  Bytes.to_string b

let test_wal_doc_matches_codec () =
  let rows = doc_table_rows (read_durability_doc ()) in
  let field_value name =
    match
      List.find_opt (fun cells -> match cells with c0 :: _ -> String.equal c0 name | [] -> false) rows
    with
    | Some cells -> (
        match List.filter_map backtick_content cells with
        | v :: _ -> v
        | [] -> Alcotest.failf "doc row %S has no backticked value" name)
    | None -> Alcotest.failf "doc has no %S header-layout row" name
  in
  (* Header-layout table vs format constants. *)
  Alcotest.(check string) "doc magic" Wal.magic (field_value "magic");
  Alcotest.(check int) "doc version" Wal.version
    (int_of_string (field_value "version"));
  (* Record-kind table vs Wal.kind_tags: rows whose first two cells are a
     backticked integer and a backticked name (the value-tag table in
     §6.1 has plain-text type names, so it does not match). *)
  let doc_kinds =
    List.filter_map
      (fun cells ->
        match cells with
        | c0 :: c1 :: _ -> (
            match (backtick_content c0, backtick_content c1) with
            | Some tag, Some name -> (
                match int_of_string_opt tag with
                | Some t -> Some (t, name)
                | None -> None)
            | _ -> None)
        | _ -> None)
      rows
  in
  Alcotest.(check (list (pair int string)))
    "doc record-kind table = Wal.kind_tags" Wal.kind_tags doc_kinds;
  (* §4 header layout vs the encoder: magic ∥ version u8 ∥ uvarint
     base-samples ∥ CRC-32 LE over the preceding bytes. *)
  let h = Wal.header ~base_samples:300 in
  let mlen = String.length Wal.magic in
  Alcotest.(check string) "header magic bytes" Wal.magic (String.sub h 0 mlen);
  Alcotest.(check int) "header version byte" Wal.version (Char.code h.[mlen]);
  let rd = Codec.R.of_string (String.sub h (mlen + 1) (String.length h - mlen - 1 - 4)) in
  Alcotest.(check int) "header base-samples uvarint" 300 (Codec.R.uvarint rd);
  Alcotest.(check bool) "header base-samples ends before CRC" true (Codec.R.at_end rd);
  let prefix = String.sub h 0 (String.length h - 4) in
  Alcotest.(check string) "header trailing CRC-32 LE" (crc_le prefix)
    (String.sub h (String.length h - 4) 4);
  (* §5 frame layout vs the encoder: uvarint payload-length ∥ payload ∥
     CRC-32 LE over length bytes and payload — i.e. string(payload) then
     its CRC — and §6: the payload leads with the kind byte. *)
  let record =
    Wal.Sample
      { steps = 12; proposed = 12; accepted = 5; rng = "rngblob";
        delta = [ ("LABEL", [ (r [ Value.Int 1 ], 1) ]) ] }
  in
  let payload = Wal.encode_record record in
  Alcotest.(check int) "payload kind byte" (Wal.kind_tag record)
    (Char.code payload.[0]);
  let w = Codec.W.create () in
  Codec.W.string w payload;
  let body = Codec.W.contents w in
  Alcotest.(check string) "frame = string(payload) ∥ CRC-32 LE"
    (body ^ crc_le body)
    (Wal.encode_frame record)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "checkpoint"
    [ ("codec",
       [ Alcotest.test_case "primitives-roundtrip" `Quick test_codec_roundtrip;
         Alcotest.test_case "corruption-detected" `Quick test_frame_detects_corruption;
         Alcotest.test_case "atomic-write" `Quick test_atomic_write ]);
      ("snapshot",
       [ qc prop_snapshot_roundtrip_byte_identical;
         Alcotest.test_case "restore-continues-stream" `Quick test_restore_continues_stream;
         Alcotest.test_case "file-corruption-detected" `Quick
           test_snapshot_file_corruption_detected;
         Alcotest.test_case "restore-db-shape" `Quick test_restore_db_shape ]);
      ("failpoint",
       [ Alcotest.test_case "one-shot" `Quick test_failpoint_one_shot;
         Alcotest.test_case "env-spec" `Quick test_failpoint_env ]);
      ("supervision",
       [ Alcotest.test_case "kill-and-resume-bit-identical" `Quick
           test_kill_and_resume_bit_identical;
         Alcotest.test_case "kill-before-first-checkpoint" `Quick
           test_kill_before_first_checkpoint;
         Alcotest.test_case "resume-previous-process" `Quick
           test_resume_from_previous_process;
         Alcotest.test_case "poison-chain" `Quick test_poison_chain_exhausts_retries ]);
      ("wal",
       [ qc prop_wal_record_roundtrip;
         Alcotest.test_case "torn-tail-recovery" `Quick test_wal_torn_tail_recovery;
         Alcotest.test_case "corruption-detected" `Quick test_wal_corruption_detected;
         Alcotest.test_case "kill-and-resume-bit-identical" `Quick
           test_wal_kill_and_resume;
         Alcotest.test_case "crash-mid-compaction" `Quick test_wal_crash_mid_compaction;
         Alcotest.test_case "crash-mid-rotation" `Quick test_wal_crash_mid_rotation;
         Alcotest.test_case "crash-torn-append" `Quick test_wal_crash_torn_append;
         Alcotest.test_case "resume-previous-process" `Quick
           test_wal_resume_previous_process;
         Alcotest.test_case "register-replay" `Quick test_wal_register_replay;
         Alcotest.test_case "write-amplification" `Quick test_wal_write_amplification;
         Alcotest.test_case "doc-matches-codec" `Quick test_wal_doc_matches_codec ]) ]
