lib/relational/schema.mli: Format Value
