(** MCMC over materialized factor graphs: worlds are (graph, assignment)
    pairs and proposals flip one hidden variable at a time. *)

type world = { graph : Factorgraph.Graph.t; assignment : Factorgraph.Assignment.t }

val world_of : Factorgraph.Graph.t -> world
val copy : world -> world

val flip : ?vars:Factorgraph.Graph.var array -> unit -> world Proposal.t
(** Uniformly picks a hidden variable (from [vars] if given) and a uniformly
    random new value for it. Symmetric, so the proposal ratio is zero; the
    model ratio touches only adjacent factors. *)

val gibbs : ?vars:Factorgraph.Graph.var array -> unit -> world Proposal.t
(** Picks a variable uniformly, then samples its new value from the
    conditional distribution given its Markov blanket. Always accepted
    (the MH ratio is exactly 1), implemented through the proposal
    correction. *)

val hidden_vars : Factorgraph.Graph.t -> Factorgraph.Graph.var array
