(* Single-process accept/select serving loop over one Registry chain.
   See the .mli for the protocol/admission/backpressure/scheduling
   contracts; docs/SERVER.md is the normative wire spec.

   Structure of one tick: poll readiness (select is used only as a
   sleep/wakeup — every fd is non-blocking, so accept and per-client
   reads are simply attempted each tick and EWOULDBLOCK means "nothing
   there"), accept new connections, drain and answer client frames,
   walk one sample if sampling is active, journal it, emit due stream
   updates, and flush whatever each socket will take without blocking. *)

module IT = Hashtbl.Make (Int)

let m_clients = Obs.Metrics.gauge "daemon.clients"
let m_rejected = Obs.Metrics.counter "daemon.rejected"
let m_coalesced = Obs.Metrics.counter "daemon.coalesced_updates"
let m_thinned = Obs.Metrics.counter "daemon.sched_thinned"

type config = {
  socket_path : string;
  max_clients : int;
  max_plans : int;
  max_bootstraps_per_tick : int;
  thin : int;
  max_samples : int;
  await_queries : int;
  slow_client_bytes : int;
  sndbuf_bytes : int;
}

let default_config ~socket_path =
  {
    socket_path;
    max_clients = 64;
    max_plans = 256;
    max_bootstraps_per_tick = 8;
    thin = 2;
    max_samples = 0;
    await_queries = 0;
    slow_client_bytes = 64 * 1024;
    sndbuf_bytes = 0;
  }

(* One stream subscription: [every >= 1] is a fixed cadence, [every = 0]
   asks the scheduler each sample. [pending] is the drop-oldest latch a
   slow client's updates coalesce into. *)
type sub = { every : int; mutable last_emit : int; mutable pending : string option }

type client = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  outbuf : Buffer.t;
  mutable out_off : int;  (* bytes of [outbuf] already written to the socket *)
  subs : sub IT.t;  (* keyed by wire query id *)
  mutable closing : bool;  (* farewell frame queued; drop once flushed *)
  mutable alive : bool;
}

type t = {
  cfg : config;
  reg : Registry.t;
  durable : Durable.t option;
  sched : Scheduler.t;
  listen_fd : Unix.file_descr;
  mutable clients : client list;
  mutable started : bool;  (* sampling latch: set once await_queries is met *)
  mutable shutdown : bool;
  mutable rejected : int;
  mutable coalesced : int;
  mutable thinned : int;
  mutable bootstraps_this_tick : int;
}

let shutting_down t = t.shutdown
let client_count t = List.length t.clients
let samples t = Registry.samples t.reg
let rejected t = t.rejected
let coalesced t = t.coalesced
let thinned t = t.thinned

let record_clients t =
  if Obs.Metrics.enabled () then
    Obs.Metrics.set_gauge m_clients (float_of_int (List.length t.clients))

let sampling_active t =
  (not t.shutdown) && t.started
  && (t.cfg.max_samples = 0 || Registry.samples t.reg < t.cfg.max_samples)

(* ---------- construction ---------- *)

let listen_socket path =
  if Sys.file_exists path then Sys.remove path;
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd 64;
     Unix.set_nonblock fd
   with Unix.Unix_error _ as e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let make ?scheduler cfg reg durable =
  if cfg.thin < 1 then invalid_arg "Daemon: thin must be >= 1";
  if cfg.max_clients < 1 then invalid_arg "Daemon: max_clients must be >= 1";
  (* A peer closing mid-write must surface as EPIPE, not kill the
     process. *)
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let sched =
    match scheduler with Some s -> s | None -> Scheduler.create ()
  in
  (* Queries already present (fresh registration before [start], or a
     snapshot/WAL resume) join the scheduler now. *)
  List.iter
    (fun (qid, _) -> Scheduler.track sched (Registry.id_to_int qid))
    (Registry.queries reg);
  {
    cfg;
    reg;
    durable;
    sched;
    listen_fd = listen_socket cfg.socket_path;
    clients = [];
    started = Registry.query_count reg >= cfg.await_queries;
    shutdown = false;
    rejected = 0;
    coalesced = 0;
    thinned = 0;
    bootstraps_this_tick = 0;
  }

let of_registry ?scheduler cfg reg = make ?scheduler cfg reg None
let of_durable ?scheduler cfg d = make ?scheduler cfg (Durable.registry d) (Some d)

(* ---------- output ---------- *)

let unflushed c = Buffer.length c.outbuf - c.out_off

let enqueue c resp =
  Buffer.add_string c.outbuf (Protocol.encode_response resp);
  Buffer.add_char c.outbuf '\n'

let reject t c code msg =
  t.rejected <- t.rejected + 1;
  Obs.Metrics.incr m_rejected;
  enqueue c (Protocol.Error { code; msg })

(* Subscriptions in ascending wire-id order. [c.subs] is a Hashtbl, and its
   iteration order depends on insertion history — a daemon that restores from
   a checkpoint re-registers queries in a different order than the original
   process and would otherwise emit frames in a different interleaving,
   diverging from the twin it must stay byte-identical with (R8:
   deterministic-serialization). *)
let subs_in_order c =
  IT.fold (fun wire_id sub acc -> (wire_id, sub) :: acc) c.subs []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let drop_client t c =
  if c.alive then begin
    c.alive <- false;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    t.clients <- List.filter (fun c' -> c'.alive) t.clients;
    record_clients t
  end

(* Write as much buffered output as the socket takes right now. When the
   buffer drains, promote at most one pending (coalesced) update per
   subscription and push again — so a recovering client gets the newest
   update per query first, not a replay of stale ones. *)
let flush_client t c =
  let write_once () =
    let len = unflushed c in
    if len = 0 then true
    else
      let bytes = Buffer.to_bytes c.outbuf in
      match Unix.write c.fd bytes c.out_off len with
      | n ->
          c.out_off <- c.out_off + n;
          if unflushed c = 0 then begin
            Buffer.clear c.outbuf;
            c.out_off <- 0;
            true
          end
          else n > 0
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          false
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
        ->
          drop_client t c;
          false
  in
  let rec pump promoted =
    if c.alive && write_once () then
      if Buffer.length c.outbuf = 0 then
        if promoted then begin
          if c.closing then drop_client t c
        end
        else begin
          List.iter
            (fun (_, sub) ->
              match sub.pending with
              | Some frame ->
                  sub.pending <- None;
                  Buffer.add_string c.outbuf frame;
                  Buffer.add_char c.outbuf '\n'
              | None -> ())
            (subs_in_order c);
          if Buffer.length c.outbuf > 0 then pump true
          else if c.closing then drop_client t c
        end
      else pump promoted
  in
  pump false

(* ---------- requests ---------- *)

let find_query t wire_id =
  List.find_opt
    (fun (qid, _) -> Int.equal (Registry.id_to_int qid) wire_id)
    (Registry.queries t.reg)

let find_by_name t name =
  List.find_opt (fun (_, n) -> String.equal n name) (Registry.queries t.reg)

let estimates_of m =
  List.map
    (fun (row, p) -> (Relational.Row.to_string row, p))
    (Core.Marginals.estimates m)

let registered_reply t qid name =
  Protocol.Registered
    {
      query = Registry.id_to_int qid;
      name;
      samples = Core.Marginals.samples (Registry.marginals t.reg qid);
    }

let handle_register t c ~sql ~name =
  match name with
  | Some n when Option.is_some (find_by_name t n) ->
      (* Reattach-by-name: registering an existing name returns the
         standing query instead of duplicating the plan — this is how
         clients find their queries again after a daemon resume. *)
      let qid, _ = Option.get (find_by_name t n) in
      enqueue c (registered_reply t qid n)
  | _ ->
      if Registry.query_count t.reg >= t.cfg.max_plans then
        reject t c Protocol.Admission_plans
          (Printf.sprintf "plan limit %d reached" t.cfg.max_plans)
      else if t.bootstraps_this_tick >= t.cfg.max_bootstraps_per_tick then
        reject t c Protocol.Admission_bootstrap
          (Printf.sprintf "bootstrap budget %d exhausted this tick; retry"
             t.cfg.max_bootstraps_per_tick)
      else begin
        match Registry.register_sql ?name t.reg sql with
        | qid ->
            t.bootstraps_this_tick <- t.bootstraps_this_tick + 1;
            Scheduler.track t.sched (Registry.id_to_int qid);
            let n =
              match List.assoc_opt qid (Registry.queries t.reg) with
              | Some n -> n
              | None -> sql
            in
            enqueue c (registered_reply t qid n)
        | exception Relational.Sql.Parse_error msg ->
            enqueue c (Protocol.Error { code = Protocol.Sql; msg })
      end

let handle_request t c (req : Protocol.request) =
  match req with
  | Register { sql; name } -> handle_register t c ~sql ~name
  | Stream { query; every } -> (
      match find_query t query with
      | None ->
          enqueue c
            (Protocol.Error
               {
                 code = Protocol.Unknown_query;
                 msg = Printf.sprintf "no query %d" query;
               })
      | Some _ ->
          let every = max 0 every in
          IT.replace c.subs query
            { every; last_emit = Registry.samples t.reg; pending = None };
          enqueue c (Protocol.Streaming { query; every }))
  | Detach { query } -> (
      match find_query t query with
      | None ->
          enqueue c
            (Protocol.Error
               {
                 code = Protocol.Unknown_query;
                 msg = Printf.sprintf "no query %d" query;
               })
      | Some (qid, name) ->
          let m = Registry.unregister t.reg qid in
          Scheduler.untrack t.sched query;
          List.iter (fun c' -> IT.remove c'.subs query) t.clients;
          enqueue c
            (Protocol.Detached
               {
                 query;
                 name;
                 samples = Core.Marginals.samples m;
                 estimates = estimates_of m;
               }))
  | Marginals { query } -> (
      match find_query t query with
      | None ->
          enqueue c
            (Protocol.Error
               {
                 code = Protocol.Unknown_query;
                 msg = Printf.sprintf "no query %d" query;
               })
      | Some (qid, name) ->
          let m = Registry.marginals t.reg qid in
          enqueue c
            (Protocol.Marginals_reply
               {
                 query;
                 name;
                 samples = Core.Marginals.samples m;
                 estimates = estimates_of m;
               }))
  | List_queries ->
      enqueue c
        (Protocol.Queries_reply
           (List.map
              (fun (qid, n) -> (Registry.id_to_int qid, n))
              (Registry.queries t.reg)))
  | Stats ->
      enqueue c
        (Protocol.Stats_reply
           {
             clients = List.length t.clients;
             queries = Registry.query_count t.reg;
             samples = Registry.samples t.reg;
             max_samples = t.cfg.max_samples;
             rejected = t.rejected;
             coalesced = t.coalesced;
             thinned = t.thinned;
           })
  | Shutdown ->
      t.shutdown <- true;
      enqueue c Protocol.Bye;
      c.closing <- true

let handle_line t c line =
  match Protocol.decode_request line with
  | Result.Ok req -> handle_request t c req
  | Result.Error (code, msg) -> enqueue c (Protocol.Error { code; msg })

(* ---------- input ---------- *)

let process_lines t c =
  let s = Buffer.contents c.inbuf in
  let n = String.length s in
  let rec go pos =
    if pos >= n || not c.alive || c.closing then pos
    else
      match String.index_from_opt s pos '\n' with
      | None -> pos
      | Some nl ->
          handle_line t c (String.sub s pos (nl - pos));
          go (nl + 1)
  in
  let consumed = go 0 in
  if consumed > 0 then begin
    Buffer.clear c.inbuf;
    Buffer.add_substring c.inbuf s consumed (n - consumed)
  end

let read_client t c =
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read c.fd chunk 0 (Bytes.length chunk) with
    | 0 -> drop_client t c
    | n ->
        Buffer.add_subbytes c.inbuf chunk 0 n;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
      ->
        drop_client t c
  in
  go ();
  if c.alive then process_lines t c

let accept_clients t =
  let rec go () =
    match Unix.accept ~cloexec:true t.listen_fd with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | fd, _ ->
        Unix.set_nonblock fd;
        if t.cfg.sndbuf_bytes > 0 then
          (try Unix.setsockopt_int fd Unix.SO_SNDBUF t.cfg.sndbuf_bytes
           with Unix.Unix_error _ -> ());
        let c =
          {
            fd;
            inbuf = Buffer.create 256;
            outbuf = Buffer.create 256;
            out_off = 0;
            subs = IT.create 4;
            closing = false;
            alive = true;
          }
        in
        if List.length t.clients >= t.cfg.max_clients then begin
          t.rejected <- t.rejected + 1;
          Obs.Metrics.incr m_rejected;
          enqueue c
            (Protocol.Error
               {
                 code = Protocol.Admission_clients;
                 msg = Printf.sprintf "client limit %d reached" t.cfg.max_clients;
               });
          c.closing <- true;
          flush_client t c;
          if c.alive then drop_client t c
        end
        else begin
          t.clients <- c :: t.clients;
          record_clients t
        end;
        go ()
  in
  go ()

(* ---------- sampling + updates ---------- *)

let deliver_update t c sub frame =
  if unflushed c > t.cfg.slow_client_bytes then begin
    (* Slow reader: coalesce drop-oldest into the one-slot latch. *)
    (match sub.pending with
    | Some _ ->
        t.coalesced <- t.coalesced + 1;
        Obs.Metrics.incr m_coalesced
    | None -> ());
    sub.pending <- Some frame
  end
  else begin
    Buffer.add_string c.outbuf frame;
    Buffer.add_char c.outbuf '\n'
  end

let emit_updates t sample =
  List.iter
    (fun c ->
      if c.alive && not c.closing then
        List.iter
          (fun (wire_id, sub) ->
            match find_query t wire_id with
            | None -> ()
            | Some (qid, _) ->
                let cad =
                  if sub.every >= 1 then sub.every
                  else Scheduler.cadence t.sched wire_id
                in
                if sample - sub.last_emit >= cad then begin
                  sub.last_emit <- sample;
                  let m = Registry.marginals t.reg qid in
                  deliver_update t c sub
                    (Protocol.encode_response
                       (Protocol.Update
                          { query = wire_id; sample; estimates = estimates_of m }))
                end
                else if sub.every = 0 && cad > 1 then begin
                  t.thinned <- t.thinned + 1;
                  Obs.Metrics.incr m_thinned
                end)
          (subs_in_order c))
    t.clients

let step_once t =
  Registry.step t.reg ~thin:t.cfg.thin;
  (match t.durable with Some d -> Durable.after_sample d | None -> ());
  let sample = Registry.samples t.reg in
  List.iter
    (fun (qid, _) ->
      let m = Registry.marginals t.reg qid in
      let summary =
        List.fold_left
          (fun acc (_, p) -> acc +. p)
          0. (Core.Marginals.estimates m)
      in
      Scheduler.observe t.sched (Registry.id_to_int qid) summary)
    (Registry.queries t.reg);
  emit_updates t sample

(* ---------- loop ---------- *)

let tick t ~timeout =
  t.bootstraps_this_tick <- 0;
  if (not t.started) && Registry.query_count t.reg >= t.cfg.await_queries then
    t.started <- true;
  (* select is purely a sleep/wakeup: every fd below is non-blocking, so
     the actual readiness test is the EWOULDBLOCK each attempt handles.
     This sidesteps any need to compare file descriptors. *)
  let readers = t.listen_fd :: List.map (fun c -> c.fd) t.clients in
  let writers =
    List.filter_map
      (fun c -> if unflushed c > 0 then Some c.fd else None)
      t.clients
  in
  (try ignore (Unix.select readers writers [] timeout)
   with Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> ());
  accept_clients t;
  List.iter (fun c -> if c.alive then read_client t c) t.clients;
  if (not t.started) && Registry.query_count t.reg >= t.cfg.await_queries then
    t.started <- true;
  if sampling_active t then step_once t;
  List.iter (fun c -> if c.alive then flush_client t c) t.clients

let close t =
  List.iter
    (fun c ->
      c.alive <- false;
      try Unix.close c.fd with Unix.Unix_error _ -> ())
    t.clients;
  t.clients <- [];
  record_clients t;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  if Sys.file_exists t.cfg.socket_path then
    try Sys.remove t.cfg.socket_path with Sys_error _ -> ()

let run t =
  while not t.shutdown do
    let timeout = if sampling_active t then 0. else 0.05 in
    tick t ~timeout
  done;
  (* Best-effort farewell flush (Bye and any tail updates), then release
     sockets and make the journal directory clean for the next resume. *)
  List.iter (fun c -> if c.alive then flush_client t c) t.clients;
  close t;
  match t.durable with Some d -> Durable.close d | None -> ()
