(* Any-time top-k with calibrated uncertainty: which strings are most likely
   to be person mentions? The top-k evaluator samples only until the ranking
   is stable at 95% confidence (the MystiQ-style workload of [22, 5] in the
   paper's related work), and every probability comes with a Wilson
   interval. *)

open Core

let () =
  let docs = Ie.Corpus.generate_tokens ~seed:3 ~n_tokens:6_000 in
  let db = Relational.Database.create () in
  ignore (Ie.Token_table.load db docs : Relational.Table.t);
  let world = World.create db in
  let crf = Ie.Crf.create ~params:(Ie.Crf.default_params ()) world in
  let rng = Mcmc.Rng.create 17 in
  let pdb = Pdb.create ~world ~proposal:(Ie.Proposals.bio_constrained_flip crf) ~rng in

  (* Burn in, then evaluate top-10 with early stopping. *)
  Pdb.walk pdb ~steps:60_000;
  let query = Relational.Sql.parse "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'" in
  let t0 = Unix.gettimeofday () in
  let res = Topk_eval.evaluate ~max_samples:1_200 pdb ~query ~k:10 ~thin:400 in
  Printf.printf "top-10 person strings after %d samples (%.2fs, early stop: %b)\n\n"
    res.Topk_eval.samples_used
    (Unix.gettimeofday () -. t0)
    res.separated;

  (* Re-estimate with intervals on a fresh marginal pass for reporting. *)
  let m = Evaluator.evaluate Evaluator.Materialized pdb ~query ~thin:400 ~samples:300 in
  Printf.printf "%-14s %-8s %-16s\n" "string" "p" "95% interval";
  List.iter
    (fun (row, _) ->
      let p = Marginals.probability m row in
      let lo, hi = Confidence.wilson_interval m row in
      Printf.printf "%-14s %-8.3f [%.3f, %.3f]\n"
        (Relational.Value.to_string (Relational.Row.get row 0))
        p lo hi)
    res.ranking;

  (* Evidence: a user pins one token's label; the posterior shifts. *)
  print_newline ();
  let boston_tok = ref (-1) in
  (try
     for i = 0 to Ie.Crf.n_tokens crf - 1 do
       if Ie.Crf.token_string crf i = "Boston" then begin
         boston_tok := i;
         raise Exit
       end
     done
   with Exit -> ());
  if !boston_tok >= 0 then begin
    Printf.printf "clamping token %d (\"Boston\") to B-ORG as user-provided evidence...\n"
      !boston_tok;
    Ie.Crf.clamp crf ~pos:!boston_tok (Ie.Labels.B Ie.Labels.Org);
    let q_org = Relational.Sql.parse "SELECT COUNT(*) FROM TOKEN WHERE LABEL='B-ORG'" in
    let m2 = Evaluator.evaluate Evaluator.Materialized pdb ~query:q_org ~thin:400 ~samples:300 in
    Printf.printf "E[#B-ORG labels | evidence] = %.1f\n" (Aggregate.expectation m2)
  end
