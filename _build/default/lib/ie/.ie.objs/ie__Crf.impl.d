lib/ie/crf.ml: Array Bag Core Database Factorgraph Hashtbl Labels Lexicon List Option Params Relational Row Schema Table Templates Token_table Value
