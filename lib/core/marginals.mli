(** Tuple-marginal estimates (Eq. 5): counts of how many sampled worlds
    contained each answer tuple, normalized by the number of samples.

    Membership uses the multiset convention of the paper's remark on
    projections: a tuple is in the answer of a sampled world iff its
    maintained count is positive.

    Zero-sample convention: with z = 0 observed worlds there is no
    evidence, so {!probability} is 0. for every tuple, {!estimates} is
    empty, and {!squared_error_to} charges nothing for the estimator's
    own (empty) support. Every probability-deriving accessor shares this
    convention — none substitutes a fake z = 1 normalizer. *)

type t

val create : unit -> t

val observe : t -> Relational.Bag.t -> unit
(** Folds one sampled answer set in: every row with positive count gets +1;
    the normalizer z gets +1. *)

val samples : t -> int

val probability : t -> Relational.Row.t -> float
(** Estimated Pr[t ∈ Q(W)]; 0 for never-seen tuples. *)

val estimates : t -> (Relational.Row.t * float) list
(** All observed tuples with probabilities, sorted by row. *)

val counts : t -> (Relational.Row.t * int) list
(** The raw per-tuple hit counts, sorted by row — the canonical image a
    checkpoint stores (probabilities are derived, counts are exact). *)

val of_counts : samples:int -> (Relational.Row.t * int) list -> t
(** Rebuild an estimator from checkpointed {!counts} and its normalizer.
    Inverse of [counts]/{!samples}. Raises [Invalid_argument] on a negative
    normalizer or a count outside [0, samples]. *)

val merge : t list -> t
(** Pools counts and normalizers across independent chains (§5.4). *)

val merge_shards : t list -> t
(** Unions per-shard marginals of one query over a {e partitioned}
    database: every shard must have observed the same number of samples
    z (raises [Invalid_argument] otherwise); the result keeps z as its
    normalizer and gives each row min(z, Σ shard counts) — exact for
    rows only one shard can produce, the union bound otherwise.
    Contrast with {!merge}, which averages chains over the {e same}
    data and sums the normalizers. *)

val squared_error : reference:t -> t -> float
(** Element-wise squared loss over the union of support — the paper's
    evaluation metric. *)

val squared_error_to : reference:(Relational.Row.t * float) list -> t -> float

val pp : Format.formatter -> t -> unit
