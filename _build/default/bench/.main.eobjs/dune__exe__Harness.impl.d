bench/harness.ml: Core Evaluator Ie List Marginals Mcmc Parallel_eval Pdb Printf Relational Unix World
