(** Relational algebra with multiset semantics.

    The operator set covers the query class the paper evaluates: selections,
    multiset projections, products/joins, distinct, union/difference,
    grouped aggregation, and {!constructor-Count_join} — the decorrelated
    form of scalar COUNT subqueries with one correlation equality
    (paper Query 3).

    Role in the pipeline (§4): a value of {!t} is the shared plan language
    both evaluators consume — Algorithm 3 re-executes it per sampled world
    via {!Eval.eval}, Algorithm 1 compiles it once into a stateful
    {!View.t} and maintains the answer from deltas (Eq. 6). *)

type agg =
  | Count_star
  | Count of string
  | Sum of string
  | Avg of string
  | Min of string
  | Max of string

type agg_item = { agg : agg; as_name : string }
type dir = Asc | Desc

type t =
  | Scan of { table : string; alias : string option }
  | Select of Expr.t * t
  | Project of string list * t
      (** Multiset projection: duplicate output rows keep their counts. *)
  | Product of t * t
  | Join of Expr.t * t * t
  | Distinct of t
  | Union of t * t
  | Diff of t * t  (** Multiset difference (monus). *)
  | Group_by of { keys : string list; aggs : agg_item list; child : t }
  | Count_join of { child : t; key : string; sub : t; sub_key : string; as_name : string }
      (** Extends every [child] row with the number of [sub] rows whose
          [sub_key] equals the row's [key] (0 when none match). *)
  | Order_by of { keys : (string * dir) list; limit : int option; child : t }
      (** Ordering with optional LIMIT. As a multiset the result only
          changes when [limit] is set (top-N rows, counting multiplicity,
          ties broken by full-row order); {!Eval.eval_ordered} recovers the
          ordering itself. *)

val scan : ?alias:string -> string -> t
val select : Expr.t -> t -> t
val project : string list -> t -> t
val join : Expr.t -> t -> t -> t
val group_by : string list -> agg_item list -> t -> t
val count_star : ?as_name:string -> t -> t
(** [count_star q] counts the rows of [q] (global aggregate). *)

val output_schema : Database.t -> t -> Schema.t
(** Raises [Failure]/[Not_found] on unknown tables or columns. *)

val base_tables : t -> string list
(** Names of base tables read anywhere in the expression, without
    duplicates. *)

val equal : t -> t -> bool
(** Canonical structural identity, monomorphic throughout. Two plans that
    are [equal] produce identical answers over any database, so the
    multi-query optimizer treats them as the {e same} plan: the serving
    registry's subplan cache maintains one shared view node per
    equivalence class. Plans should be normalized ({!Optimizer.optimize})
    before comparison so syntactic variants of the same query coincide. *)

val hash : t -> int
(** Consistent with {!equal}: [equal a b] implies [hash a = hash b]. *)

val pp : Format.formatter -> t -> unit
