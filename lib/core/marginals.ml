open Relational

module RH = Hashtbl.Make (struct
  type t = Row.t

  let equal = Row.equal
  let hash = Row.hash
end)

type t = { counts : int RH.t; mutable z : int }

let create () = { counts = RH.create 64; z = 0 }

let observe m answer =
  Bag.iter
    (fun row c ->
      if c > 0 then RH.replace m.counts row (1 + Option.value ~default:0 (RH.find_opt m.counts row)))
    answer;
  m.z <- m.z + 1

let samples m = m.z

(* The one z = 0 convention (marginals.mli): no samples means no
   evidence, so every probability is 0. Each deriving function below goes
   through this helper — [probability], [estimates] and
   [squared_error_to] previously disagreed ([max 1 z] vs an explicit
   0-at-zero branch), which is invisible through the public API (counts
   are empty whenever z = 0) but made the checkpoint-restored path
   depend on which accessor a caller picked. *)
let ratio m c = if Int.equal m.z 0 then 0. else float_of_int c /. float_of_int m.z

let probability m row = ratio m (Option.value ~default:0 (RH.find_opt m.counts row))

let estimates m =
  RH.fold (fun row c acc -> (row, ratio m c) :: acc) m.counts []
  |> List.sort (fun (a, _) (b, _) -> Row.compare a b)

let counts m =
  RH.fold (fun row c acc -> (row, c) :: acc) m.counts []
  |> List.sort (fun (a, _) (b, _) -> Row.compare a b)

let of_counts ~samples entries =
  if samples < 0 then invalid_arg "Marginals.of_counts: negative sample count";
  let m = create () in
  List.iter
    (fun (row, c) ->
      if c < 0 || c > samples then
        invalid_arg "Marginals.of_counts: count outside [0, samples]";
      if c > 0 then RH.replace m.counts row c)
    entries;
  m.z <- samples;
  m

let merge ms =
  let out = create () in
  List.iter
    (fun m ->
      RH.iter
        (fun row c -> RH.replace out.counts row (c + Option.value ~default:0 (RH.find_opt out.counts row)))
        m.counts;
      out.z <- out.z + m.z)
    ms;
  out

(* Shard union. Shards partition the database, so at aligned sample t
   the full-corpus answer is the disjoint union of the shard answers: a
   row only one shard can produce keeps its exact count, and the
   normalizer stays the per-shard z (NOT the sum — chain-merging [merge]
   would dilute a row with probability 1 on its owning shard down to
   1/n_shards). A row several shards emit gets the union bound
   min(z, Σ counts), exact when the shard events are disjoint. *)
let merge_shards ms =
  match ms with
  | [] -> create ()
  | m0 :: rest ->
    List.iter
      (fun m ->
        if m.z <> m0.z then
          invalid_arg "Marginals.merge_shards: shards observed different sample counts")
      rest;
    let out = create () in
    List.iter
      (fun m ->
        RH.iter
          (fun row c ->
            RH.replace out.counts row
              (min m0.z (c + Option.value ~default:0 (RH.find_opt out.counts row))))
          m.counts)
      ms;
    out.z <- m0.z;
    out

let squared_error_to ~reference m =
  let seen = RH.create 64 in
  let acc = ref 0. in
  List.iter
    (fun (row, p) ->
      RH.replace seen row ();
      let q = probability m row in
      acc := !acc +. ((p -. q) ** 2.))
    reference;
  RH.iter
    (fun row c ->
      if not (RH.mem seen row) then begin
        let q = ratio m c in
        acc := !acc +. (q ** 2.)
      end)
    m.counts;
  !acc

let squared_error ~reference m = squared_error_to ~reference:(estimates reference) m

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (row, p) -> Format.fprintf fmt "%s: %.4f@," (Row.to_string row) p) (estimates m);
  Format.fprintf fmt "(%d samples)@]" m.z
