lib/tuplepdb/lineage.ml: Array Format Hashtbl List Random
