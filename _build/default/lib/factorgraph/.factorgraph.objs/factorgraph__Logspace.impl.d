lib/factorgraph/logspace.ml: Array
