(* Line-delimited JSON codec for the daemon protocol (docs/SERVER.md).

   Emission reuses Obs.Jsonx (which already prints floats as %.17g, the
   round-trip-exact form the bit-identical smoke comparison relies on);
   parsing is a ~100-line recursive-descent JSON reader kept here so the
   serving stack stays stdlib-only. The parser accepts exactly the JSON
   the encoder emits plus insignificant whitespace — numbers, strings
   with the standard escapes, arrays, objects, true/false/null. *)

type error_code =
  | Parse
  | Bad_request
  | Sql
  | Unknown_query
  | Admission_clients
  | Admission_plans
  | Admission_bootstrap

let error_code_to_string = function
  | Parse -> "parse"
  | Bad_request -> "bad_request"
  | Sql -> "sql"
  | Unknown_query -> "unknown_query"
  | Admission_clients -> "admission_clients"
  | Admission_plans -> "admission_plans"
  | Admission_bootstrap -> "admission_bootstrap"

let error_code_of_string = function
  | "parse" -> Some Parse
  | "bad_request" -> Some Bad_request
  | "sql" -> Some Sql
  | "unknown_query" -> Some Unknown_query
  | "admission_clients" -> Some Admission_clients
  | "admission_plans" -> Some Admission_plans
  | "admission_bootstrap" -> Some Admission_bootstrap
  | _ -> None

type request =
  | Register of { sql : string; name : string option }
  | Stream of { query : int; every : int }
  | Detach of { query : int }
  | Marginals of { query : int }
  | List_queries
  | Stats
  | Shutdown

type estimates = (string * float) list

type response =
  | Registered of { query : int; name : string; samples : int }
  | Streaming of { query : int; every : int }
  | Update of { query : int; sample : int; estimates : estimates }
  | Detached of { query : int; name : string; samples : int; estimates : estimates }
  | Marginals_reply of {
      query : int;
      name : string;
      samples : int;
      estimates : estimates;
    }
  | Queries_reply of (int * string) list
  | Stats_reply of {
      clients : int;
      queries : int;
      samples : int;
      max_samples : int;
      rejected : int;
      coalesced : int;
      thinned : int;
    }
  | Error of { code : error_code; msg : string }
  | Bye

(* ---------- JSON values ---------- *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(* ---------- parser ---------- *)

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when Char.equal x ch -> advance c
  | Some x -> bad "expected %C at offset %d, found %C" ch c.pos x
  | None -> bad "expected %C at offset %d, found end of input" ch c.pos

let parse_literal c lit value =
  let n = String.length lit in
  if c.pos + n <= String.length c.s && String.equal (String.sub c.s c.pos n) lit then begin
    c.pos <- c.pos + n;
    value
  end
  else bad "invalid literal at offset %d" c.pos

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> bad "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> bad "unterminated escape"
        | Some ch ->
            advance c;
            (match ch with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if c.pos + 4 > String.length c.s then bad "truncated \\u escape";
                let hex = String.sub c.s c.pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with Failure _ -> bad "invalid \\u escape %S" hex
                in
                c.pos <- c.pos + 4;
                (* The encoder only \u-escapes control characters; anything
                   in the BMP is decoded as UTF-8 so foreign frames stay
                   readable. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | _ -> bad "invalid escape \\%C" ch);
            go ())
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  if Int.equal start c.pos then bad "expected a number at offset %d" start;
  let text = String.sub c.s start (c.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> bad "invalid number %S" text

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> bad "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if (match peek c with Some '}' -> true | _ -> false) then begin
        advance c;
        J_obj []
      end
      else begin
        let rec fields acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance c;
              List.rev ((k, v) :: acc)
          | _ -> bad "expected ',' or '}' at offset %d" c.pos
        in
        J_obj (fields [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if (match peek c with Some ']' -> true | _ -> false) then begin
        advance c;
        J_arr []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> bad "expected ',' or ']' at offset %d" c.pos
        in
        J_arr (items [])
      end
  | Some '"' -> J_str (parse_string c)
  | Some 't' -> parse_literal c "true" (J_bool true)
  | Some 'f' -> parse_literal c "false" (J_bool false)
  | Some 'n' -> parse_literal c "null" J_null
  | Some _ -> J_num (parse_number c)

let parse_json line =
  let c = { s = line; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos < String.length line then bad "trailing bytes at offset %d" c.pos;
  v

(* ---------- field accessors ---------- *)

let field obj name =
  match obj with
  | J_obj fields -> (
      match List.find_opt (fun (k, _) -> String.equal k name) fields with
      | Some (_, v) -> Some v
      | None -> None)
  | _ -> None

let req_field obj name =
  match field obj name with
  | Some v -> v
  | None -> bad "missing field %S" name

let as_string name = function
  | J_str s -> s
  | _ -> bad "field %S must be a string" name

let as_int name = function
  | J_num f ->
      let i = int_of_float f in
      if Float.equal (float_of_int i) f then i else bad "field %S must be an integer" name
  | _ -> bad "field %S must be a number" name

let as_float name = function J_num f -> f | _ -> bad "field %S must be a number" name

(* ---------- requests ---------- *)

(* Every frame is emitted with its object fields in ascending key order.
   The decoders above are field-order independent, so this is wire
   compatible; what it buys is byte-identical frames regardless of how the
   record literal happens to be written or refactored, which the resume
   twin-smoke comparison and the protocol determinism test pin (R8:
   deterministic-serialization). *)
let obj_sorted fields =
  Obs.Jsonx.obj (List.sort (fun (a, _) (b, _) -> String.compare a b) fields)

let encode_request req =
  let open Obs.Jsonx in
  match req with
  | Register { sql; name } ->
      obj_sorted
        (("op", str "register") :: ("sql", str sql)
        :: (match name with None -> [] | Some n -> [ ("name", str n) ]))
  | Stream { query; every } ->
      obj_sorted [ ("op", str "stream"); ("query", int query); ("every", int every) ]
  | Detach { query } -> obj_sorted [ ("op", str "detach"); ("query", int query) ]
  | Marginals { query } -> obj_sorted [ ("op", str "marginals"); ("query", int query) ]
  | List_queries -> obj_sorted [ ("op", str "list") ]
  | Stats -> obj_sorted [ ("op", str "stats") ]
  | Shutdown -> obj_sorted [ ("op", str "shutdown") ]

let decode_request line =
  match parse_json line with
  | exception Bad msg -> Result.Error (Parse, msg)
  | j -> (
      try
        match as_string "op" (req_field j "op") with
        | "register" ->
            Result.Ok
              (Register
                 {
                   sql = as_string "sql" (req_field j "sql");
                   name =
                     (match field j "name" with
                     | None -> None
                     | Some n -> Some (as_string "name" n));
                 })
        | "stream" ->
            Result.Ok
              (Stream
                 {
                   query = as_int "query" (req_field j "query");
                   every =
                     (match field j "every" with
                     | None -> 0
                     | Some e -> as_int "every" e);
                 })
        | "detach" -> Result.Ok (Detach { query = as_int "query" (req_field j "query") })
        | "marginals" ->
            Result.Ok (Marginals { query = as_int "query" (req_field j "query") })
        | "list" -> Result.Ok List_queries
        | "stats" -> Result.Ok Stats
        | "shutdown" -> Result.Ok Shutdown
        | other -> bad "unknown op %S" other
      with Bad msg -> Result.Error (Bad_request, msg))

(* ---------- responses ---------- *)

let encode_estimates es =
  Obs.Jsonx.arr
    (List.map (fun (row, p) -> Obs.Jsonx.arr [ Obs.Jsonx.str row; Obs.Jsonx.float p ]) es)

let decode_estimates name = function
  | J_arr items ->
      List.map
        (function
          | J_arr [ row; p ] -> (as_string name row, as_float name p)
          | _ -> bad "field %S must hold [row, probability] pairs" name)
        items
  | _ -> bad "field %S must be an array" name

let encode_response resp =
  let open Obs.Jsonx in
  match resp with
  | Registered { query; name; samples } ->
      obj_sorted
        [ ("type", str "registered"); ("query", int query); ("name", str name);
          ("samples", int samples) ]
  | Streaming { query; every } ->
      obj_sorted [ ("type", str "streaming"); ("query", int query); ("every", int every) ]
  | Update { query; sample; estimates } ->
      obj_sorted
        [ ("type", str "update"); ("query", int query); ("sample", int sample);
          ("estimates", encode_estimates estimates) ]
  | Detached { query; name; samples; estimates } ->
      obj_sorted
        [ ("type", str "detached"); ("query", int query); ("name", str name);
          ("samples", int samples); ("estimates", encode_estimates estimates) ]
  | Marginals_reply { query; name; samples; estimates } ->
      obj_sorted
        [ ("type", str "marginals"); ("query", int query); ("name", str name);
          ("samples", int samples); ("estimates", encode_estimates estimates) ]
  | Queries_reply queries ->
      obj_sorted
        [ ("type", str "queries");
          ("queries", arr (List.map (fun (id, n) -> arr [ int id; str n ]) queries)) ]
  | Stats_reply { clients; queries; samples; max_samples; rejected; coalesced; thinned } ->
      obj_sorted
        [ ("type", str "stats"); ("clients", int clients); ("queries", int queries);
          ("samples", int samples); ("max_samples", int max_samples);
          ("rejected", int rejected); ("coalesced", int coalesced);
          ("thinned", int thinned) ]
  | Error { code; msg } ->
      obj_sorted [ ("type", str "error"); ("code", str (error_code_to_string code)); ("msg", str msg) ]
  | Bye -> obj_sorted [ ("type", str "bye") ]

let decode_response line =
  match parse_json line with
  | exception Bad msg -> Result.Error msg
  | j -> (
      match field j "type" with
      | None -> Result.Error "missing field \"type\""
      | Some ty -> (
          match as_string "type" ty with
          | exception Bad msg -> Result.Error msg
          | ty -> (
              try
                match ty with
                | "registered" ->
                    Result.Ok
                      (Registered
                         {
                           query = as_int "query" (req_field j "query");
                           name = as_string "name" (req_field j "name");
                           samples = as_int "samples" (req_field j "samples");
                         })
                | "streaming" ->
                    Result.Ok
                      (Streaming
                         {
                           query = as_int "query" (req_field j "query");
                           every = as_int "every" (req_field j "every");
                         })
                | "update" ->
                    Result.Ok
                      (Update
                         {
                           query = as_int "query" (req_field j "query");
                           sample = as_int "sample" (req_field j "sample");
                           estimates = decode_estimates "estimates" (req_field j "estimates");
                         })
                | "detached" ->
                    Result.Ok
                      (Detached
                         {
                           query = as_int "query" (req_field j "query");
                           name = as_string "name" (req_field j "name");
                           samples = as_int "samples" (req_field j "samples");
                           estimates = decode_estimates "estimates" (req_field j "estimates");
                         })
                | "marginals" ->
                    Result.Ok
                      (Marginals_reply
                         {
                           query = as_int "query" (req_field j "query");
                           name = as_string "name" (req_field j "name");
                           samples = as_int "samples" (req_field j "samples");
                           estimates = decode_estimates "estimates" (req_field j "estimates");
                         })
                | "queries" ->
                    Result.Ok
                      (Queries_reply
                         (match req_field j "queries" with
                         | J_arr items ->
                             List.map
                               (function
                                 | J_arr [ id; n ] ->
                                     (as_int "queries" id, as_string "queries" n)
                                 | _ -> bad "field \"queries\" must hold [id, name] pairs")
                               items
                         | _ -> bad "field \"queries\" must be an array"))
                | "stats" ->
                    Result.Ok
                      (Stats_reply
                         {
                           clients = as_int "clients" (req_field j "clients");
                           queries = as_int "queries" (req_field j "queries");
                           samples = as_int "samples" (req_field j "samples");
                           max_samples = as_int "max_samples" (req_field j "max_samples");
                           rejected = as_int "rejected" (req_field j "rejected");
                           coalesced = as_int "coalesced" (req_field j "coalesced");
                           thinned = as_int "thinned" (req_field j "thinned");
                         })
                | "error" -> (
                    let code_s = as_string "code" (req_field j "code") in
                    match error_code_of_string code_s with
                    | Some code ->
                        Result.Ok (Error { code; msg = as_string "msg" (req_field j "msg") })
                    | None -> Result.Error (Printf.sprintf "unknown error code %S" code_s))
                | "bye" -> Result.Ok Bye
                | other -> Result.Error (Printf.sprintf "unknown response type %S" other)
              with Bad msg -> Result.Error msg)))
