examples/ner_pipeline.ml: Core Evaluator Factorgraph Ie List Marginals Mcmc Pdb Printf Relational Unix World
