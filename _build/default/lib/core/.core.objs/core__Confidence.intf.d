lib/core/confidence.mli: Marginals Relational
